// Benchmarks regenerating every table/figure of the paper's evaluation.
// Each BenchmarkE* target drives the corresponding experiment from
// internal/experiments at quick scale (run `cmd/snoozesim -scale full` for
// paper-scale tables); the Benchmark{ACO,FFD,Exact,...} targets measure the
// core algorithms and substrates themselves.
//
//	go test -bench=. -benchmem
package snooze

import (
	"testing"
	"time"

	"snooze/internal/cluster"
	"snooze/internal/consolidation"
	"snooze/internal/coord"
	"snooze/internal/election"
	"snooze/internal/experiments"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// ---------------------------------------------------------------------------
// One bench per reproduced experiment (E1–E7).
// ---------------------------------------------------------------------------

// skipInShort keeps `go test -short -bench=.` fast (CI): the heavy targets
// — whole experiments and paper-scale cluster drives — are skipped, while
// the micro-benchmarks still run. Full runs stay `go test -bench=.`.
func skipInShort(b *testing.B) {
	b.Helper()
	if testing.Short() {
		b.Skip("heavy benchmark: skipped in -short mode")
	}
}

func benchExperiment(b *testing.B, run func(experiments.Scale) experiments.Result) {
	skipInShort(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := run(experiments.ScaleQuick)
		if r.Table == nil {
			b.Fatal("experiment produced no table")
		}
	}
}

// BenchmarkE1SubmissionScalability regenerates E1: VM submission time vs
// cluster and batch size (ref [7] scalability figures).
func BenchmarkE1SubmissionScalability(b *testing.B) {
	benchExperiment(b, experiments.E1SubmissionScalability)
}

// BenchmarkE2ManagementOverhead regenerates E2: centralized vs distributed
// per-VM management cost (Section II-F).
func BenchmarkE2ManagementOverhead(b *testing.B) {
	benchExperiment(b, experiments.E2ManagementOverhead)
}

// BenchmarkE3FaultTolerance regenerates E3: GL/GM crash availability and
// submission stalls (Section II-F).
func BenchmarkE3FaultTolerance(b *testing.B) {
	benchExperiment(b, experiments.E3FaultTolerance)
}

// BenchmarkE4ACOvsFFD regenerates E4: the consolidation comparison table
// (Section III-B: hosts, utilization, energy, deviation from optimal).
func BenchmarkE4ACOvsFFD(b *testing.B) {
	benchExperiment(b, experiments.E4ACOvsFFD)
}

// BenchmarkE5EnergySavings regenerates E5: diurnal-day energy under the
// power-management variants (Section III).
func BenchmarkE5EnergySavings(b *testing.B) {
	benchExperiment(b, experiments.E5EnergySavings)
}

// BenchmarkE6SelfHealing regenerates E6: time-to-heal after a GL crash
// (Section II-E).
func BenchmarkE6SelfHealing(b *testing.B) {
	benchExperiment(b, experiments.E6SelfHealing)
}

// BenchmarkE7ACOAblation regenerates E7: ACO solution quality vs its
// parameters (ref [10] quality figures).
func BenchmarkE7ACOAblation(b *testing.B) {
	benchExperiment(b, experiments.E7ACOAblation)
}

// BenchmarkE8DistributedACO regenerates E8: the paper's future-work
// distributed consolidation vs the centralized algorithm (Section V).
func BenchmarkE8DistributedACO(b *testing.B) {
	benchExperiment(b, experiments.E8DistributedACO)
}

// BenchmarkA1EstimatorAblation regenerates A1: the demand-estimator design
// choice called out in DESIGN.md §5.
func BenchmarkA1EstimatorAblation(b *testing.B) {
	benchExperiment(b, experiments.A1EstimatorAblation)
}

// BenchmarkA2DispatchAblation regenerates A2: the GL dispatch-policy design
// choice called out in DESIGN.md §5.
func BenchmarkA2DispatchAblation(b *testing.B) {
	benchExperiment(b, experiments.A2DispatchAblation)
}

// BenchmarkDistributedACOSolve400 measures the distributed solver alone at a
// size where the centralized algorithm becomes slow.
func BenchmarkDistributedACOSolve400(b *testing.B) {
	skipInShort(b)
	p := benchProblem(400)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (consolidation.DistributedACO{GroupSize: 16}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Fleet-scale scheduling throughput (README "Fleet scale"; CI-gated via
// BENCH_telemetry.json).
// ---------------------------------------------------------------------------

// BenchmarkPlacementsPerSecond measures end-to-end scheduling throughput of
// the GL→GM→LC hierarchy: waves of VM submissions against settled 512-LC
// fleets, timed wall-clock. sequential is the paper-faithful per-VM dispatch
// (one probe chain per VM); batched coalesces each wave into one multi-VM
// placement request per candidate GM (ManagerConfig.DispatchBatch).
func BenchmarkPlacementsPerSecond(b *testing.B) {
	b.Run("sequential", func(b *testing.B) { benchPlacements(b, 1) })
	b.Run("batched", func(b *testing.B) { benchPlacements(b, 32) })
}

func benchPlacements(b *testing.B, batch int) {
	skipInShort(b)
	const lcs, gms, wave = 512, 32, 256
	b.ReportAllocs()
	placed := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		cfg := cluster.DefaultConfig(workload.Grid5000Topology(lcs, gms), int64(1300+i))
		cfg.Manager.DispatchBatch = batch
		c := cluster.New(cfg)
		c.Settle(30 * time.Second)
		vms := workload.NewGenerator(int64(i), nil).Batch(wave)
		b.StartTimer()
		resp, err := c.SubmitAndWait(vms, time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Placed) == 0 {
			b.Fatal("nothing placed")
		}
		placed += len(resp.Placed)
	}
	b.ReportMetric(float64(placed)/b.Elapsed().Seconds(), "placements/s")
}

// BenchmarkFleetRelocationScan measures the wall cost of periodic
// reconfiguration scans over a populated fleet — with the group-wide view
// epoch gate on (default) vs recomputing every scan (DisableScanGating).
// The reconfiguration period deliberately outpaces monitor ingestion:
// between report bursts nothing moves, which is exactly the condition the
// epoch gate detects and skips. The solver runs dry (plan discarded) so the
// fleet stays quiescent instead of churning on migrations, isolating the
// scan overhead itself.
func BenchmarkFleetRelocationScan(b *testing.B) {
	b.Run("gated", func(b *testing.B) { benchRelocationScan(b, true) })
	b.Run("ungated", func(b *testing.B) { benchRelocationScan(b, false) })
}

// dryRunReconfig pays the full consolidation-scan cost (problem build, demand
// estimates, FFD solve) and then reports no plan, keeping the benchmarked
// fleet free of migration churn.
type dryRunReconfig struct{ inner consolidation.FFD }

var errDryRun = fmtError("bench: dry-run reconfiguration, plan discarded")

type fmtError string

func (e fmtError) Error() string { return string(e) }

func (dryRunReconfig) Name() string { return "dry-run-ffd" }

func (d dryRunReconfig) Solve(p consolidation.Problem) (consolidation.Result, error) {
	if _, err := d.inner.Solve(p); err != nil {
		return consolidation.Result{}, err
	}
	return consolidation.Result{}, errDryRun
}

func benchRelocationScan(b *testing.B, gated bool) {
	skipInShort(b)
	cfg := cluster.DefaultConfig(workload.Grid5000Topology(256, 16), 77)
	cfg.Manager.DispatchBatch = 32
	cfg.Manager.Reconfig = dryRunReconfig{inner: consolidation.FFD{Key: consolidation.SortCPU}}
	cfg.Manager.ReconfigPeriod = 250 * time.Millisecond
	cfg.Manager.DisableScanGating = !gated
	c := cluster.New(cfg)
	c.Settle(30 * time.Second)
	if _, err := c.SubmitAndWait(workload.NewGenerator(7, nil).Batch(512), time.Hour); err != nil {
		b.Fatal(err)
	}
	c.Settle(time.Minute)
	skips0 := c.Metrics.Count("gm.reconfig-skipped-unchanged")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Settle(10 * time.Second)
	}
	b.StopTimer()
	simSecs := float64(b.N) * 10
	b.ReportMetric(float64(c.Metrics.Count("gm.reconfig-skipped-unchanged")-skips0)/simSecs, "skips/simsec")
}

// ---------------------------------------------------------------------------
// Core algorithm micro-benchmarks.
// ---------------------------------------------------------------------------

func benchProblem(n int) consolidation.Problem {
	inst := workload.NewInstance(workload.InstanceConfig{Seed: 1, VMs: n, Kind: workload.CorrelatedInstance, Lo: 0.05, Hi: 0.45})
	return consolidation.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
}

// BenchmarkACOSolve50/200 measure the consolidation algorithm itself.
func BenchmarkACOSolve50(b *testing.B)  { benchACO(b, 50) }
func BenchmarkACOSolve200(b *testing.B) { benchACO(b, 200) }

func benchACO(b *testing.B, n int) {
	if n >= 200 {
		skipInShort(b)
	}
	p := benchProblem(n)
	cfg := consolidation.DefaultACOConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (consolidation.ACO{Config: cfg}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACOSolveParallel measures the parallel ant construction path
// ("the algorithm is well suited for parallelization", Section III-A).
func BenchmarkACOSolveParallel(b *testing.B) {
	skipInShort(b)
	p := benchProblem(200)
	cfg := consolidation.DefaultACOConfig()
	cfg.Parallel = true
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (consolidation.ACO{Config: cfg}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFFDSolve200 measures the baseline heuristic.
func BenchmarkFFDSolve200(b *testing.B) {
	p := benchProblem(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (consolidation.FFD{Key: consolidation.SortCPU}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExactSolve14 measures the branch-and-bound solver at the
// CPLEX-comparable instance size.
func BenchmarkExactSolve14(b *testing.B) {
	p := benchProblem(14)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (consolidation.Exact{}).Solve(p); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.
// ---------------------------------------------------------------------------

// BenchmarkKernelEvents measures discrete-event throughput of the
// simulation kernel.
func BenchmarkKernelEvents(b *testing.B) {
	b.ReportAllocs()
	k := simkernel.New(1)
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(time.Duration(i%1000)*time.Microsecond, fn)
		k.Step()
	}
}

// BenchmarkBusRoundTrip measures one request/response over the in-process
// transport (the control-plane hop cost in simulations).
func BenchmarkBusRoundTrip(b *testing.B) {
	k := simkernel.New(1)
	bus := transport.NewBus(k, transport.Config{Latency: time.Microsecond})
	bus.Register("server", func(req *transport.Request) { req.Respond(req.Payload) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := false
		bus.Call("client", "server", "echo", i, time.Second, func(any, error) { done = true })
		for !done {
			k.Step()
		}
	}
}

// BenchmarkElectionFailover measures a full leader failover round (session
// expiry → successor promotion) in virtual time processing cost.
func BenchmarkElectionFailover(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := simkernel.New(int64(i))
		svc := coord.NewService(k)
		c1 := election.NewCandidate(svc, k, election.Config{Base: "/el", ID: "a", SessionTTL: time.Second})
		c2 := election.NewCandidate(svc, k, election.Config{Base: "/el", ID: "b", SessionTTL: time.Second})
		if err := c1.Join(); err != nil {
			b.Fatal(err)
		}
		k.Run(k.Now() + 2*time.Second)
		if err := c2.Join(); err != nil {
			b.Fatal(err)
		}
		k.Run(k.Now() + 2*time.Second)
		c1.Resign()
		k.Run(k.Now() + 5*time.Second)
		if st, _ := c2.State(); st != election.StateLeader {
			b.Fatal("failover did not complete")
		}
	}
}

// BenchmarkClusterFormation144 measures building + settling the paper's
// 144-node topology.
func BenchmarkClusterFormation144(b *testing.B) {
	skipInShort(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(144, 12), int64(i)))
		c.Settle(30 * time.Second)
		if c.Leader() == nil {
			b.Fatal("no leader")
		}
	}
}

// BenchmarkSubmission500VMs measures the paper-scale submission (500 VMs on
// 144 nodes) end to end in the simulator.
func BenchmarkSubmission500VMs(b *testing.B) {
	skipInShort(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(144, 12), int64(i)))
		c.Settle(30 * time.Second)
		gen := workload.NewGenerator(int64(i), nil)
		resp, err := c.SubmitAndWait(gen.Batch(500), time.Hour)
		if err != nil {
			b.Fatal(err)
		}
		if len(resp.Placed) == 0 {
			b.Fatal("nothing placed")
		}
	}
}

// BenchmarkHypervisorUsage measures the monitored-usage computation that
// every LC performs on each monitoring tick.
func BenchmarkHypervisorUsage(b *testing.B) {
	k := simkernel.New(1)
	c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(1, 1), 1))
	_ = k
	node := c.Nodes["lc-0000"]
	for i := 0; i < 8; i++ {
		spec := types.VMSpec{ID: types.VMID(string(rune('a' + i))), Requested: types.RV(1, 1024, 10, 10)}
		if err := node.StartVM(spec); err != nil {
			b.Fatal(err)
		}
	}
	c.Settle(10 * time.Second)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = node.Usage()
	}
}
