// Telemetry: run a bursty workload on a simulated cluster and observe the
// autonomic loop through the telemetry subsystem — watch node.overload
// events stream out of GET /v1/watch while the GM relocates VMs off the hot
// node, then pull the node's utilization history from GET /v1/series.
// Everything below the submission is pure typed-client code, so the same
// program works against a live `snoozed -role control` process.
//
// The run deliberately OUTLIVES the raw retention ring: the cluster is
// configured with a tiny 64-sample raw ring (~3 minutes of 3s monitoring)
// and then simulated for 30 minutes, so most of the history survives only in
// the downsampled 1m/10m retention tiers. The final query shows the stitched
// series, the per-tier metadata, and the Truncated watermark that tells
// consumers the window is partly decimated.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"snooze"
	apiv1 "snooze/api/v1"
	"snooze/internal/scheduling"
	"snooze/internal/telemetry"
	"snooze/internal/workload"
)

func main() {
	// A small cluster whose VMs idle at 20% and deterministically burst to
	// 100% of their reservation — the spiky web workload that triggers
	// overload relocation (Section II-C).
	top := snooze.Grid5000Topology(4, 1)
	cfg := snooze.DefaultClusterConfig(top, 7)
	reg := workload.NewRegistry()
	reg.Register("bursty", workload.BurstyTrace{
		Seed: 7, Baseline: 0.2, BurstTo: 1.0, BurstProb: 0.4,
		Slot: 2 * time.Minute, MemBase: 0.3,
	})
	cfg.Hypervisor.Traces = reg
	th := scheduling.Thresholds{Overload: 0.85, Underload: 0}
	cfg.LC.Thresholds = th
	cfg.Manager.Overload = scheduling.OverloadRelocation{Thresholds: th}
	// A raw ring of only 64 samples (~3 minutes at the 3s monitoring
	// cadence): the 30-minute run below evicts most raw history into the
	// default 1m/10m retention tiers.
	cfg.Retention = telemetry.StoreConfig{SeriesCapacity: 64}
	c := snooze.NewCluster(cfg)
	c.Settle(30 * time.Second)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	backend := snooze.NewSimBackend(c, 0)
	go func() { _ = http.Serve(ln, snooze.NewAPIHandler(backend)) }()
	cli := snooze.NewAPIClient("http://" + ln.Addr().String())
	ctx := context.Background()

	// Pack four bursty VMs onto as few nodes as first-fit allows: a burst
	// saturates the host and crosses the 85% overload threshold.
	specs := make([]apiv1.VMSpec, 4)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("web-%02d", i),
			Requested: apiv1.Resources{CPU: 2, MemoryMB: 4096, NetRxMbps: 100, NetTxMbps: 100},
			TraceID:   "bursty",
		}
	}
	result, err := cli.SubmitVMs(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("placed %d VMs, unplaced %d\n\n", len(result.Placed), len(result.Unplaced))

	// Open the watch BEFORE driving time: ?from=1 replays the journal from
	// the beginning, then the stream follows live as the simulation runs.
	stream, err := cli.Watch(ctx, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer stream.Close()

	// Drive 30 virtual minutes of bursts while the stream delivers.
	go c.Settle(30 * time.Minute)

	fmt.Println("telemetry events (up to 3 node.overload crossings shown):")
	overloads := 0
	deadline := time.After(10 * time.Second)
loop:
	for overloads < 3 {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				break loop
			}
			switch ev.Type {
			case "node.overload":
				overloads++
			case "vm.state", "node.normal":
			default:
				continue
			}
			detail := ev.Attrs["util"]
			if detail == "" {
				detail = ev.Attrs["state"]
			}
			fmt.Printf("  seq=%-4d t=%-8s %-14s %-16s %s\n",
				ev.Seq, time.Duration(ev.AtNs).Round(time.Second), ev.Type, ev.Entity, detail)
		case <-deadline:
			break loop
		}
	}

	// The history behind those events: the hot node's utilization series,
	// downsampled to per-minute maxima.
	keys, err := cli.ListSeries(ctx)
	if err != nil {
		log.Fatal(err)
	}
	entity := ""
	for _, k := range keys {
		if k.Metric == "util" {
			entity = k.Entity
			break
		}
	}
	data, err := cli.QuerySeries(ctx, apiv1.SeriesQuery{
		Entity: entity, Metric: "util", Agg: "max", StepNs: int64(time.Minute), Limit: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s util (per-minute max, first %d of %d buckets):\n", entity, len(data.Points), data.Total)
	for _, p := range data.Points {
		bar := ""
		for i := 0.0; i < p.Value*40; i++ {
			bar += "#"
		}
		fmt.Printf("  %8s %5.2f %s\n", time.Duration(p.AtNs).Round(time.Second), p.Value, bar)
	}

	// The run outlived the 64-sample raw ring: the reply carries the
	// eviction watermark. History before rawFrom survives only in the
	// 1m/10m tiers, and any window reaching before it is flagged Truncated
	// so consumers (like the capacity-view builder) fall back to snapshots
	// instead of trusting decimated percentiles.
	fmt.Printf("\nretention: retained [%s, %s], full resolution from %s, truncated=%v\n",
		time.Duration(data.OldestNs).Round(time.Second),
		time.Duration(data.NewestNs).Round(time.Second),
		time.Duration(data.RawFromNs).Round(time.Second), data.Truncated)
	for _, tr := range data.Tiers {
		fmt.Printf("  tier %4s × %d: %d buckets retained\n",
			time.Duration(tr.StepNs), tr.Capacity, tr.Points)
	}

	snap, err := cli.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nautonomic loop: %d detector-driven relocation triggers, %d VM moves, %d overload events\n",
		snap.Counters["gm.detector-relocations"], snap.Counters["gm.relocations"], snap.Counters["gm.overload-events"])
}
