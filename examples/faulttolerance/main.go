// Fault tolerance: crash the Group Leader and then a Group Manager under a
// running workload, and watch the hierarchy self-heal (Section II-E) while
// every VM keeps running.
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
)

func main() {
	c := snooze.NewCluster(snooze.DefaultClusterConfig(snooze.Grid5000Topology(12, 3), 1))
	c.Settle(30 * time.Second)

	gen := snooze.NewGenerator(5, nil)
	resp, err := c.SubmitAndWait(gen.Batch(16), 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	c.Settle(10 * time.Second)
	stamp := func(event string) {
		leader := "-"
		if l := c.Leader(); l != nil {
			leader = string(l.ID())
		}
		fmt.Printf("[t=%8v] %-28s leader=%-6s GMs=%d runningVMs=%d\n",
			c.Kernel.Now().Round(time.Second), event, leader, len(c.GroupManagers()), c.RunningVMs())
	}
	stamp(fmt.Sprintf("baseline (%d placed)", len(resp.Placed)))

	// Kill the GL: one of the GMs is promoted by the election; the promoted
	// GM's LCs rejoin through the new GL's heartbeats.
	old := c.CrashLeader()
	stamp("GL " + string(old.ID()) + " crashed")
	c.Settle(45 * time.Second)
	stamp("after election + rejoins")

	// Kill a GM: its LCs (and their VMs) survive and rejoin other GMs.
	gms := c.GroupManagers()
	victim := gms[0]
	victim.Crash()
	stamp("GM " + string(victim.ID()) + " crashed")
	c.Settle(60 * time.Second)
	stamp("after LC rejoins")

	// The control plane still serves submissions.
	resp2, err := c.SubmitAndWait(gen.Batch(2), 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	stamp(fmt.Sprintf("new submission (%d placed)", len(resp2.Placed)))
	fmt.Println("\nno VM was lost to either management-plane failure — the data plane")
	fmt.Println("(Section II-E: failures are healed by re-election and rejoin protocols)")
}
