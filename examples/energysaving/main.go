// Energy saving: the paper's thesis in one run — spreading VMs across
// moderately loaded nodes leaves nothing to suspend; add periodic ACO
// consolidation and idle servers appear, get suspended, and the cluster
// draws less power (Section III).
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
	"snooze/internal/scheduling"
	"snooze/internal/workload"
)

func run(consolidate bool) (kwh float64, suspended int) {
	top := snooze.Grid5000Topology(12, 1)
	cfg := snooze.DefaultClusterConfig(top, 9)

	// Day/night demand pattern for every VM.
	reg := workload.NewRegistry()
	reg.Register("diurnal", workload.DiurnalTrace{Low: 0.2, High: 0.7, MemFraction: 0.4, Period: 2 * time.Hour})
	cfg.Hypervisor.Traces = reg

	// Round-robin placement spreads the VMs (the anti-consolidation
	// baseline); energy management is on in both runs.
	cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
	cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.95, Underload: 0}
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 2 * time.Minute
	if consolidate {
		cfg.Manager.Reconfig = snooze.NewACOAlgorithm(snooze.DefaultACOConfig())
		cfg.Manager.ReconfigPeriod = 20 * time.Minute
	}

	c := snooze.NewCluster(cfg)
	c.Settle(30 * time.Second)
	batch := snooze.NewGenerator(2, nil).Batch(20)
	for i := range batch {
		batch[i].TraceID = "diurnal"
	}
	if _, err := c.SubmitAndWait(batch, time.Hour); err != nil {
		log.Fatal(err)
	}
	c.Settle(2 * time.Hour) // one full diurnal period
	states := c.PowerStates()
	return c.TotalEnergyJoules() / 3.6e6, states[snooze.PowerSuspendedState]
}

func main() {
	base, s0 := run(false)
	cons, s1 := run(true)
	fmt.Printf("without consolidation: %.2f kWh (%d nodes suspended at end)\n", base, s0)
	fmt.Printf("with ACO consolidation: %.2f kWh (%d nodes suspended at end)\n", cons, s1)
	fmt.Printf("energy saved: %.1f%%\n", 100*(base-cons)/base)
	fmt.Println("\n(Section III: consolidation packs VMs 'on as few nodes as possible' to")
	fmt.Println(" favor the idle times the suspend mechanism converts into energy savings)")
}
