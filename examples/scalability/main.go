// Scalability: grow the hierarchy from 16 to 1024 local controllers and
// watch the virtual-time cost of VM submission stay flat — the property the
// paper attributes to distributing VM management across group managers
// (Section II-F: "the system remains highly scalable with increasing amounts
// of VMs and hosts").
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
)

func main() {
	fmt.Println("LCs    GMs  submit(100 VMs)  per-VM")
	for _, p := range []struct{ lcs, gms int }{
		{16, 2}, {64, 4}, {144, 8}, {256, 12}, {1024, 32},
	} {
		c := snooze.NewCluster(snooze.DefaultClusterConfig(snooze.Grid5000Topology(p.lcs, p.gms), int64(p.lcs)))
		c.Settle(30 * time.Second)
		gen := snooze.NewGenerator(1, nil)
		start := c.Kernel.Now()
		resp, err := c.SubmitAndWait(gen.Batch(100), time.Hour)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := c.Kernel.Now() - start
		fmt.Printf("%-6d %-4d %-16v %v   (placed %d)\n",
			p.lcs, p.gms, elapsed.Round(time.Millisecond),
			(elapsed / time.Duration(len(resp.Placed))).Round(time.Microsecond), len(resp.Placed))
	}
}
