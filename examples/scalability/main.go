// Scalability: grow the hierarchy from 16 to 10240 local controllers and
// watch the virtual-time cost of VM submission stay flat — the property the
// paper attributes to distributing VM management across group managers
// (Section II-F: "the system remains highly scalable with increasing amounts
// of VMs and hosts"). Every row runs on the deterministic simkernel clock;
// the second half of each row shows batched dispatch (the GL coalescing a
// submission into one multi-VM placement request per group manager), which
// multiplies fleet-scale throughput without changing placement outcomes.
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
)

func main() {
	fmt.Println("LCs    GMs  dispatch    submit(100 VMs)  per-VM  submit-p95  placed")
	for _, p := range []struct{ lcs, gms int }{
		{16, 2}, {64, 4}, {144, 8}, {256, 12}, {1024, 32}, {4096, 128}, {10240, 256},
	} {
		for _, batch := range []int{1, 32} {
			cfg := snooze.DefaultClusterConfig(snooze.Grid5000Topology(p.lcs, p.gms), int64(p.lcs))
			cfg.Manager.DispatchBatch = batch
			c := snooze.NewCluster(cfg)
			c.Settle(30 * time.Second)
			gen := snooze.NewGenerator(1, nil)
			start := c.Kernel.Now()
			resp, err := c.SubmitAndWait(gen.Batch(100), time.Hour)
			if err != nil {
				log.Fatal(err)
			}
			elapsed := c.Kernel.Now() - start
			mode := "sequential"
			if batch > 1 {
				mode = "batched"
			}
			// gl.submit-latency records virtual milliseconds per submission.
			p95 := time.Duration(c.Metrics.Summarize("gl.submit-latency").P95 * float64(time.Millisecond))
			fmt.Printf("%-6d %-4d %-11s %-16v %-7v %-11v %d\n",
				p.lcs, p.gms, mode, elapsed.Round(time.Millisecond),
				(elapsed / time.Duration(len(resp.Placed))).Round(time.Microsecond),
				p95.Round(10*time.Microsecond), len(resp.Placed))
		}
	}
}
