// Consolidation: the paper's Section III-B evaluation in two acts. Act one
// is the one-shot algorithm comparison — ACO vs First-Fit Decreasing vs the
// exact optimum on a generated instance, including the host savings. Act two
// runs consolidation the way Snooze actually uses it: the continuous online
// optimizer (internal/consolidation/online) packing a live, churning cluster
// a few budgeted migrations per round, with the packing converging round by
// round.
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
	"snooze/internal/consolidation/online"
	"snooze/internal/scheduling"
	"snooze/internal/telemetry"
	"snooze/internal/workload"
)

func oneShot() {
	inst := snooze.NewInstance(snooze.InstanceConfig{Seed: 3, VMs: 18})
	p := snooze.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
	fmt.Printf("instance: %d VMs on up to %d hosts (lower bound: %d)\n\n",
		len(p.VMs), len(p.Nodes), p.LowerBound())

	ffd, err := snooze.SolveFFD(p)
	if err != nil {
		log.Fatal(err)
	}
	aco, err := snooze.SolveACO(p, snooze.DefaultACOConfig())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := snooze.SolveOptimal(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FFD (CPU presort): %d hosts\n", ffd.HostsUsed)
	fmt.Printf("ACO:               %d hosts (cycles run: %d)\n", aco.HostsUsed, aco.Cycles)
	fmt.Printf("optimal (B&B):     %d hosts (proved: %v)\n\n", opt.HostsUsed, opt.Optimal)

	saved := 100 * float64(ffd.HostsUsed-aco.HostsUsed) / float64(ffd.HostsUsed)
	dev := 100 * float64(aco.HostsUsed-opt.HostsUsed) / float64(opt.HostsUsed)
	fmt.Printf("ACO saves %.1f%% of hosts vs FFD and deviates %.1f%% from optimal\n", saved, dev)
	fmt.Println("(paper, Section III-B: 4.7% hosts conserved on average, 1.1% deviation)")
}

func occupied(c *snooze.Cluster) int {
	n := 0
	for _, node := range c.Nodes {
		if len(node.Status().VMs) > 0 {
			n++
		}
	}
	return n
}

func onlineRun() {
	const vms = 10
	top := snooze.Grid5000Topology(vms, 1)
	cfg := snooze.DefaultClusterConfig(top, 7)

	// Every VM's demand oscillates between 80% and 95% of its reservation
	// with a per-VM phase shift: the churn re-prices the packing problem
	// every round without invalidating it.
	reg := workload.NewRegistry()
	for i := 0; i < vms; i++ {
		reg.Register(fmt.Sprintf("churn%d", i), workload.DiurnalTrace{
			Low: 0.8, High: 0.95, MemFraction: 0.7,
			Period: 30 * time.Minute,
			Phase:  time.Duration(i) * 3 * time.Minute,
		})
	}
	cfg.Hypervisor.Traces = reg

	// Round-robin placement spreads the VMs (the anti-consolidation
	// baseline); the online optimizer then packs them two migrations per
	// round, planning against the p95 of each VM's windowed demand.
	cfg.Manager.Placement = &scheduling.RoundRobinPlacement{}
	cfg.LC.Thresholds = scheduling.Thresholds{Overload: 0.99, Underload: 0}
	cfg.Manager.Consolidation = online.Config{
		Enabled:         true,
		Period:          2 * time.Minute,
		MigrationBudget: 2,
		Colonies:        4,
	}

	c := snooze.NewCluster(cfg)
	c.Settle(30 * time.Second)
	var batch []snooze.VMSpec
	for i := 0; i < vms; i++ {
		batch = append(batch, snooze.VMSpec{
			ID:        snooze.VMID(fmt.Sprintf("vm-%02d", i)),
			Requested: snooze.RV(2, 4096, 10, 10),
			TraceID:   fmt.Sprintf("churn%d", i),
		})
	}
	if _, err := c.SubmitAndWait(batch, time.Hour); err != nil {
		log.Fatal(err)
	}
	c.Settle(10 * time.Second)
	floor := c.Telemetry.Journal().LastSeq()
	before := occupied(c)
	fmt.Printf("spread: %d VMs across %d nodes (packing ratio %.1f VMs/host)\n\n",
		vms, before, float64(vms)/float64(before))

	c.Settle(16 * time.Minute) // several budgeted rounds

	for _, ev := range c.Telemetry.Journal().Replay(floor+1, 0) {
		if ev.Type != telemetry.EventConsolidationRound {
			continue
		}
		fmt.Printf("  round %2s @%-5v hosts %s -> %s  (planned %s, executed %s, failed %s, cancelled %s)\n",
			ev.Attrs.Get("round"), ev.At.Truncate(time.Second),
			ev.Attrs.Get("hostsBefore"), ev.Attrs.Get("hostsAfter"),
			ev.Attrs.Get("planned"), ev.Attrs.Get("executed"), ev.Attrs.Get("failed"), ev.Attrs.Get("cancelled"))
	}
	after := occupied(c)
	fmt.Printf("\npacked: %d VMs across %d nodes (packing ratio %.1f VMs/host)\n",
		vms, after, float64(vms)/float64(after))
	fmt.Printf("rounds %d, migrations %d, cancels %d — budget kept every round\n",
		c.Metrics.Count("gm.consolidation-rounds"),
		c.Metrics.Count("gm.consolidation-migrations"),
		c.Metrics.Count("gm.consolidation-cancels"))
}

func main() {
	fmt.Println("== one-shot: ACO vs FFD vs optimal ==")
	oneShot()
	fmt.Println()
	fmt.Println("== online: continuous consolidation under churn ==")
	onlineRun()
}
