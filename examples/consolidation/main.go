// Consolidation: the paper's Section III-B comparison as a library call —
// ACO vs First-Fit Decreasing vs the exact optimum on a generated instance,
// including the energy impact of the packing.
package main

import (
	"fmt"
	"log"

	"snooze"
)

func main() {
	inst := snooze.NewInstance(snooze.InstanceConfig{Seed: 3, VMs: 18})
	p := snooze.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
	fmt.Printf("instance: %d VMs on up to %d hosts (lower bound: %d)\n\n",
		len(p.VMs), len(p.Nodes), p.LowerBound())

	ffd, err := snooze.SolveFFD(p)
	if err != nil {
		log.Fatal(err)
	}
	aco, err := snooze.SolveACO(p, snooze.DefaultACOConfig())
	if err != nil {
		log.Fatal(err)
	}
	opt, err := snooze.SolveOptimal(p)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("FFD (CPU presort): %d hosts\n", ffd.HostsUsed)
	fmt.Printf("ACO:               %d hosts (cycles run: %d)\n", aco.HostsUsed, aco.Cycles)
	fmt.Printf("optimal (B&B):     %d hosts (proved: %v)\n\n", opt.HostsUsed, opt.Optimal)

	saved := 100 * float64(ffd.HostsUsed-aco.HostsUsed) / float64(ffd.HostsUsed)
	dev := 100 * float64(aco.HostsUsed-opt.HostsUsed) / float64(opt.HostsUsed)
	fmt.Printf("ACO saves %.1f%% of hosts vs FFD and deviates %.1f%% from optimal\n", saved, dev)
	fmt.Println("(paper, Section III-B: 4.7% hosts conserved on average, 1.1% deviation)")
}
