// Apiserver: serve the versioned control-plane API (api/v1) from a
// simulated cluster and operate it through the typed client — the same
// routes a live snoozed deployment serves, so everything shown here works
// verbatim against `snoozed -role control` too (or interactively via
// `snoozectl -server http://localhost:7080 topology`).
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"snooze"
	apiv1 "snooze/api/v1"
)

func main() {
	// A 16-node simulated cluster, settled so the hierarchy has formed.
	top := snooze.Grid5000Topology(16, 2)
	c := snooze.NewCluster(snooze.DefaultClusterConfig(top, 42))
	c.Settle(30 * time.Second)

	// Mount /v1 over the simulation and serve it on a local port. The server
	// is shut down gracefully at the end: /v1/watch SSE streams end via the
	// API server's StreamContext, short requests drain inside Shutdown.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	backend := snooze.NewSimBackend(c, 0)
	api := snooze.NewAPIServer(backend)
	api.StreamContext = ctx
	mux := http.NewServeMux()
	mux.Handle("/v1/", api.Handler())
	mux.Handle("/metrics", api.PrometheusHandler())
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("api/v1 serving the simulated cluster at %s\n\n", base)

	// Everything below is pure typed-client code: point it at a snoozed
	// process instead and it behaves identically.
	cli := snooze.NewAPIClient(base)

	specs := make([]apiv1.VMSpec, 10)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("vm-%02d", i),
			Requested: apiv1.Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10},
		}
	}
	result, err := cli.SubmitVMs(ctx, specs)
	if err != nil {
		log.Fatal(err)
	}
	ids := make([]string, 0, len(result.Placed))
	for id := range result.Placed {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Printf("  %-8s -> %s\n", id, result.Placed[id])
	}
	if len(result.Unplaced) > 0 {
		fmt.Printf("  unplaced: %v\n", result.Unplaced)
	}

	topo, err := cli.Topology(ctx, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGL %s\n", topo.GL)
	for _, gm := range topo.GMs {
		fmt.Printf("└─ GM %s: %d LCs, %d VMs\n", gm.ID, gm.Summary.ActiveLCs, gm.Summary.VMs)
	}

	// Let the VMs reach the running state, then plan a consolidation.
	c.Settle(30 * time.Second)
	plan, err := cli.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: apiv1.AlgorithmACO})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconsolidation (%s): %d VMs, %d -> %d hosts, %d migrations\n",
		plan.Algorithm, plan.VMs, plan.HostsBefore, plan.HostsAfter, len(plan.Migrations))

	snap, err := cli.Metrics(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("control-plane counters: %d submissions, %d placements ok\n",
		snap.Counters["gl.submissions"], snap.Counters["gm.place-ok"])

	// Decision traces: the submit above left one trace per VM — a dispatch
	// root span with the GM probe order and a placement child span carrying
	// per-candidate rejection reasons. (`snoozectl trace vm-00` renders the
	// same chain; `curl <base>/metrics` exposes the latency histograms.)
	traces, err := cli.ListTraces(ctx, apiv1.TraceQuery{Entity: "vm/vm-00"})
	if err != nil {
		log.Fatal(err)
	}
	for _, sp := range traces.Items {
		fmt.Printf("trace %s span %s: %s %s policy=%s -> %s (%s)\n",
			sp.TraceID, sp.SpanID, sp.Kind, sp.Entity, sp.Policy, sp.Target, sp.Outcome)
	}

	// Keep serving for interactive exploration (snoozectl -server <base>);
	// ctrl-C shuts the server down gracefully.
	fmt.Printf("\nserving until interrupted — try: snoozectl -server %s topology\n", base)
	<-ctx.Done()
	stop()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	fmt.Println("bye")
}
