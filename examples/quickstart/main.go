// Quickstart: boot a simulated Snooze hierarchy, submit a batch of VMs and
// print where they landed plus the hierarchy layout — the 60-second tour of
// the public API.
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"snooze"
)

func main() {
	// A 16-node cluster managed by 2 group managers (one extra manager
	// process is spawned and promoted to group leader by the election).
	top := snooze.Grid5000Topology(16, 2)
	c := snooze.NewCluster(snooze.DefaultClusterConfig(top, 42))

	// Let the hierarchy self-organize: leader election, LC joins,
	// first heartbeats.
	c.Settle(30 * time.Second)
	fmt.Printf("hierarchy formed: leader=%s, %d group managers, %d local controllers\n",
		c.Leader().ID(), len(c.GroupManagers()), len(c.LCs))

	// Submit 12 VMs drawn from the default small/medium/large mix.
	gen := snooze.NewGenerator(7, nil)
	resp, err := c.SubmitAndWait(gen.Batch(12), 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	var ids []string
	for vm := range resp.Placed {
		ids = append(ids, string(vm))
	}
	sort.Strings(ids)
	for _, vm := range ids {
		fmt.Printf("  %-16s -> %s\n", vm, resp.Placed[snooze.VMID(vm)])
	}
	if len(resp.Unplaced) > 0 {
		fmt.Printf("  unplaced: %v\n", resp.Unplaced)
	}

	// Let the VMs boot, then show the hierarchy as the CLI would.
	c.Settle(10 * time.Second)
	topo, err := c.TopologyAndWait(time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nGL %s\n", topo.GL)
	for _, gm := range topo.GMs {
		s := gm.Summary
		fmt.Printf("└─ GM %s: %d LCs, %d VMs, reserved %v\n", gm.GM, s.ActiveLCs, s.VMs, s.Reserved)
	}
	fmt.Printf("\n%d VMs running; cluster energy so far: %.1f kJ\n",
		c.RunningVMs(), c.TotalEnergyJoules()/1000)
}
