// Autorole: the paper's Section V future work, running — "the decisions when
// a node should play the role of GM or LC in the hierarchy will be taken by
// the framework instead of the system administrator upon configuration."
// The cluster starts deliberately under-provisioned (one GM for 32 nodes);
// the autorole controller observes the LC-per-GM ratio and activates
// manager roles until the hierarchy is properly shaped.
package main

import (
	"fmt"
	"log"
	"time"

	"snooze"
	"snooze/internal/hierarchy"
)

func main() {
	top := snooze.Grid5000Topology(32, 1) // 32 nodes, ONE group manager
	cfg := snooze.DefaultClusterConfig(top, 3)
	cfg.AutoRole = &hierarchy.AutoRoleConfig{
		TargetRatio: 8, // the framework wants ≤8 LCs per GM
		Period:      15 * time.Second,
	}
	c := snooze.NewCluster(cfg)

	for step := 0; step < 6; step++ {
		c.Settle(45 * time.Second)
		fmt.Printf("[t=%6v] managers=%d (GMs=%d, spawned by framework=%d)\n",
			c.Kernel.Now().Round(time.Second), len(c.Managers),
			len(c.GroupManagers()), c.AutoRole.Spawned())
	}

	// The auto-shaped hierarchy serves normally.
	resp, err := c.SubmitAndWait(snooze.NewGenerator(1, nil).Batch(16), 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubmitted 16 VMs through the auto-shaped hierarchy: %d placed\n", len(resp.Placed))
	counts := map[string]int{}
	for _, lc := range c.LCs {
		counts[string(lc.GM())]++
	}
	fmt.Println("LCs per GM:", counts)
}
