package apiv1

// Backend-neutral decision-trace implementation: both in-process backends
// reduce /v1/traces to the shared tracer through QueryTraces, so the wire
// semantics cannot drift between deployment flavours.

import (
	"snooze/internal/obs"
)

// FromTraceRecord converts one finished span to the wire form.
func FromTraceRecord(r obs.Record) TraceSpan {
	sp := TraceSpan{
		TraceID: r.TraceID,
		SpanID:  r.SpanID,
		Parent:  r.Parent,
		Kind:    r.Kind,
		Entity:  r.Entity,
		Policy:  r.Policy,
		Target:  r.Target,
		Outcome: r.Outcome,
		StartNs: int64(r.Start),
		EndNs:   int64(r.End),
		Attrs:   r.Attrs,
	}
	if r.View != (obs.ViewEvidence{}) {
		sp.View = &TraceView{
			Gen:       r.View.Gen,
			Samples:   r.View.Samples,
			Fresh:     r.View.Fresh,
			Truncated: r.View.Truncated,
		}
	}
	for _, c := range r.Candidates {
		sp.Candidates = append(sp.Candidates, TraceCandidate{ID: c.ID, Chosen: c.Chosen, Reason: c.Reason})
	}
	return sp
}

// QueryTraces implements Backend.ListTraces over a tracer. A nil tracer
// yields an empty list — tracing being off is not an error.
func QueryTraces(t *obs.Tracer, q TraceQuery) TraceList {
	recs := t.Select(obs.Query{TraceID: q.TraceID, Entity: q.Entity, Kind: q.Kind})
	out := TraceList{Total: len(recs)}
	lo, hi, next := Page(len(recs), q.Limit, q.Offset)
	out.NextOffset = next
	out.Items = make([]TraceSpan, 0, hi-lo)
	for _, r := range recs[lo:hi] {
		out.Items = append(out.Items, FromTraceRecord(r))
	}
	return out
}
