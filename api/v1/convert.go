package apiv1

// Conversions between the internal domain types and the versioned DTOs,
// plus the backend-neutral implementations of Consolidate and Experiment.
// Both backends (simulated and live) reduce their state to []VM/[]Node and
// share the planning code here, so the two deployment flavours cannot drift.

import (
	"context"
	"fmt"
	"strings"
	"time"

	"snooze/internal/consolidation"
	"snooze/internal/experiments"
	"snooze/internal/metrics"
	"snooze/internal/protocol"
	"snooze/internal/scheduling/view"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

// FromResourceVector converts an internal resource vector to the wire form.
func FromResourceVector(r types.ResourceVector) Resources {
	return Resources{CPU: r.CPU, MemoryMB: r.Memory, NetRxMbps: r.NetRx, NetTxMbps: r.NetTx}
}

// ToResourceVector converts a wire resource vector to the internal form.
func ToResourceVector(r Resources) types.ResourceVector {
	return types.ResourceVector{CPU: r.CPU, Memory: r.MemoryMB, NetRx: r.NetRxMbps, NetTx: r.NetTxMbps}
}

// ToVMSpec converts a wire VM spec to the internal form.
func ToVMSpec(s VMSpec) types.VMSpec {
	return types.VMSpec{ID: types.VMID(s.ID), Requested: ToResourceVector(s.Requested), TraceID: s.TraceID}
}

// ToVMSpecs converts a submission batch.
func ToVMSpecs(specs []VMSpec) []types.VMSpec {
	out := make([]types.VMSpec, len(specs))
	for i, s := range specs {
		out[i] = ToVMSpec(s)
	}
	return out
}

// FromVMStatus converts a monitored VM; node overrides the status's own node
// field when non-empty (callers iterating per-node state know the host).
func FromVMStatus(st types.VMStatus, node types.NodeID) VM {
	if node == "" {
		node = st.Node
	}
	return VM{
		ID:        string(st.Spec.ID),
		Requested: FromResourceVector(st.Spec.Requested),
		State:     st.State.String(),
		Node:      string(node),
		Used:      FromResourceVector(st.Used),
		TraceID:   st.Spec.TraceID,
	}
}

// FromNodeStatus converts a monitored node.
func FromNodeStatus(st types.NodeStatus) Node {
	vms := make([]string, len(st.VMs))
	for i, id := range st.VMs {
		vms[i] = string(id)
	}
	return Node{
		ID:       string(st.Spec.ID),
		Capacity: FromResourceVector(st.Spec.Capacity),
		Power:    st.Power.String(),
		Used:     FromResourceVector(st.Used),
		Reserved: FromResourceVector(st.Reserved),
		VMs:      vms,
		Idle:     st.Idle,
	}
}

// FromSubmitResponse converts the hierarchy's placement outcome.
func FromSubmitResponse(resp protocol.SubmitResponse) SubmitResult {
	out := SubmitResult{Placed: make(map[string]string, len(resp.Placed))}
	for vm, node := range resp.Placed {
		out.Placed[string(vm)] = string(node)
	}
	for _, vm := range resp.Unplaced {
		out.Unplaced = append(out.Unplaced, string(vm))
	}
	return out
}

// fromSchedulingInfo converts a protocol scheduling description.
func fromSchedulingInfo(s protocol.SchedulingInfo) SchedulingInfo {
	return SchedulingInfo{
		Dispatch:      s.Dispatch,
		Placement:     s.Placement,
		Overload:      s.Overload,
		Underload:     s.Underload,
		Estimator:     s.Estimator,
		ViewHorizonNs: s.ViewHorizonNs,
	}
}

// FromTopologyResponse converts the GL's hierarchy export.
func FromTopologyResponse(resp protocol.TopologyResponse) Topology {
	top := Topology{
		GL:         resp.GL,
		GMs:        make([]TopologyGM, 0, len(resp.GMs)),
		Scheduling: fromSchedulingInfo(resp.Scheduling),
	}
	for _, gm := range resp.GMs {
		out := TopologyGM{
			ID:   string(gm.GM),
			Addr: gm.Addr,
			Summary: GroupSummary{
				Used:      FromResourceVector(gm.Summary.Used),
				Reserved:  FromResourceVector(gm.Summary.Reserved),
				Total:     FromResourceVector(gm.Summary.Total),
				ActiveLCs: gm.Summary.ActiveLCs,
				AsleepLCs: gm.Summary.AsleepLCs,
				VMs:       gm.Summary.VMs,
			},
		}
		if gm.Scheduling != nil {
			sched := fromSchedulingInfo(*gm.Scheduling)
			out.Scheduling = &sched
		}
		for _, lc := range gm.LCs {
			out.LCs = append(out.LCs, TopologyLC{
				ID:       string(lc.ID),
				Power:    lc.Power,
				VMs:      lc.VMs,
				Reserved: FromResourceVector(lc.Reserved),
				Capacity: FromResourceVector(lc.Capacity),
			})
		}
		top.GMs = append(top.GMs, out)
	}
	return top
}

// FromRegistry snapshots a metrics registry into the wire form.
func FromRegistry(r *metrics.Registry) MetricsSnapshot {
	snap := MetricsSnapshot{}
	if r == nil {
		return snap
	}
	for _, name := range r.Names() {
		if c := r.Count(name); c != 0 {
			if snap.Counters == nil {
				snap.Counters = make(map[string]int64)
			}
			snap.Counters[name] = c
		}
		if g, ok := r.Gauge(name); ok {
			if snap.Gauges == nil {
				snap.Gauges = make(map[string]float64)
			}
			snap.Gauges[name] = g
		}
		if series := r.Series(name); len(series) > 0 {
			if snap.Series == nil {
				snap.Series = make(map[string]SeriesSummary)
			}
			s := metrics.Summarize(series)
			snap.Series[name] = SeriesSummary{
				N: s.N, Mean: s.Mean, Min: s.Min, Max: s.Max,
				P50: s.P50, P95: s.P95, P99: s.P99, Stddev: s.Stddev,
			}
		}
		if h, ok := r.Histogram(name); ok && h.Count > 0 {
			if snap.Histograms == nil {
				snap.Histograms = make(map[string]Histogram)
			}
			snap.Histograms[name] = Histogram{
				Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max,
				Bounds: h.Bounds, Counts: h.Counts,
			}
		}
	}
	return snap
}

// ---------------------------------------------------------------------------
// Shared backend logic
// ---------------------------------------------------------------------------

// FromConsolidationCtl converts one GM's consolidation control response.
func FromConsolidationCtl(resp protocol.ConsolidationCtlResponse) ConsolidationStatus {
	st := ConsolidationStatus{
		GM:         string(resp.GM),
		Running:    resp.Running,
		InRound:    resp.InRound,
		Rounds:     resp.Rounds,
		Migrations: resp.Migrations,
		Cancels:    resp.Cancels,
		Failures:   resp.Failures,
		Budget:     resp.Budget,
		PeriodNs:   resp.PeriodNs,
	}
	if lr := resp.LastRound; lr != nil {
		st.LastRound = &ConsolidationRound{
			Round:       lr.Round,
			AtNs:        lr.AtNs,
			HostsBefore: lr.HostsBefore,
			HostsAfter:  lr.HostsAfter,
			Planned:     lr.Planned,
			Executed:    lr.Executed,
			Failed:      lr.Failed,
			Cancelled:   lr.Cancelled,
		}
	}
	return st
}

// DemandFunc prices one VM for consolidation planning (demand=p95 mode).
type DemandFunc func(vm VM) types.ResourceVector

// P95Demand builds a DemandFunc over a telemetry hub at the given
// runtime-relative instant. It prices through view.ConsolidationDemand —
// the identical chain (p95 windowed demand, snapshot fallback, reservation)
// the online consolidation optimizer plans with, so both backends' dry runs
// and the online service cannot drift.
func P95Demand(hub *telemetry.Hub, now time.Duration) DemandFunc {
	b := view.Builder{Hub: hub}
	return func(vm VM) types.ResourceVector {
		return b.ConsolidationDemand(now, types.VMStatus{
			Spec: types.VMSpec{ID: types.VMID(vm.ID), Requested: ToResourceVector(vm.Requested)},
			Used: ToResourceVector(vm.Used),
		})
	}
}

// PlanConsolidation is the backend-neutral Consolidate implementation: pack
// the running VMs of vms onto the powered-on hosts of nodes with the
// requested algorithm and derive the capacity-feasible migration sequence.
// demand prices VMs when req.Demand is "p95"; it may be nil otherwise.
func PlanConsolidation(vms []VM, nodes []Node, req ConsolidationRequest, demand DemandFunc) (ConsolidationPlan, error) {
	algoName := req.Algorithm
	if algoName == "" {
		algoName = AlgorithmACO
	}
	switch req.Demand {
	case "", DemandRequested:
		demand = nil
	case DemandP95:
		if demand == nil {
			return ConsolidationPlan{}, fmt.Errorf("%w: this backend cannot price p95 demand", ErrUnsupported)
		}
	default:
		return ConsolidationPlan{}, fmt.Errorf("%w: unknown demand mode %q (want requested|p95)", ErrInvalid, req.Demand)
	}
	var algo consolidation.Algorithm
	switch algoName {
	case AlgorithmACO:
		algo = consolidation.ACO{Config: consolidation.DefaultACOConfig()}
	case AlgorithmFFD:
		algo = consolidation.FFD{Key: consolidation.SortCPU}
	case AlgorithmOptimal:
		algo = consolidation.Exact{}
	default:
		return ConsolidationPlan{}, fmt.Errorf("%w: unknown algorithm %q (want aco|ffd|optimal)", ErrInvalid, algoName)
	}

	var problem consolidation.Problem
	current := types.Placement{}
	specs := map[types.VMID]types.VMSpec{}
	for _, n := range nodes {
		if n.Power != types.PowerOn.String() {
			continue
		}
		problem.Nodes = append(problem.Nodes, types.NodeSpec{ID: types.NodeID(n.ID), Capacity: ToResourceVector(n.Capacity)})
	}
	hosts := make(map[types.NodeID]struct{}, len(problem.Nodes))
	for _, n := range problem.Nodes {
		hosts[n.ID] = struct{}{}
	}
	for _, vm := range vms {
		if vm.State != types.VMRunning.String() {
			continue
		}
		if _, ok := hosts[types.NodeID(vm.Node)]; !ok {
			continue // host mid-transition; skip rather than plan blind
		}
		spec := types.VMSpec{ID: types.VMID(vm.ID), Requested: ToResourceVector(vm.Requested)}
		if demand != nil {
			spec.Requested = demand(vm)
		}
		problem.VMs = append(problem.VMs, spec)
		specs[spec.ID] = spec
		current[spec.ID] = types.NodeID(vm.Node)
	}

	plan := ConsolidationPlan{
		Algorithm:   algoName,
		VMs:         len(problem.VMs),
		HostsTotal:  len(problem.Nodes),
		HostsBefore: current.NodesUsed(),
	}
	if len(problem.VMs) == 0 {
		return plan, nil
	}
	result, err := algo.Solve(problem)
	if err != nil {
		return ConsolidationPlan{}, fmt.Errorf("consolidation (%s): %w", algoName, err)
	}
	plan.HostsAfter = result.HostsUsed
	plan.Optimal = result.Optimal
	plan.Cycles = result.Cycles
	for _, m := range consolidation.Plan(current, result.Placement, specs, problem.Nodes) {
		plan.Migrations = append(plan.Migrations, Migration{VM: string(m.VM), From: string(m.From), To: string(m.To)})
	}
	return plan, nil
}

// RunExperiment is the backend-neutral Experiment implementation: reproduce
// one evaluation table at quick scale. Experiments build their own simulated
// clusters, so any backend can serve them.
func RunExperiment(ctx context.Context, id string) (Experiment, error) {
	if err := ctx.Err(); err != nil {
		return Experiment{}, err
	}
	res, err := experiments.ByID(strings.ToLower(id), experiments.ScaleQuick)
	if err != nil {
		return Experiment{}, fmt.Errorf("%w: %v", ErrNotFound, err)
	}
	return Experiment{ID: res.ID, Title: res.Title, Table: res.Table.String(), Notes: res.Notes}, nil
}
