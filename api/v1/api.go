// Package apiv1 is the versioned, typed control-plane API of the Snooze
// reproduction — the stable surface operators and programs use to manage a
// deployment, whether it is the discrete-event simulation
// (api/v1/simbackend) or a live wall-clock snoozed process
// (api/v1/livebackend). The paper exposes its control plane as "Java RESTful
// web services" with a CLI on top (Section II-A); this package is that idea
// made versionable: JSON DTOs, a Backend interface implemented by every
// deployment flavour, an HTTP server mounting the /v1 resource routes
// (api/v1/server) and a typed Go client (api/v1/client).
//
// The wire contract is resource-oriented:
//
//	GET  /v1/vms              list VMs (paginated: ?limit=&offset=)
//	POST /v1/vms              submit a VM batch
//	GET  /v1/vms/{id}         one VM
//	GET  /v1/nodes            list nodes (paginated)
//	GET  /v1/nodes/{id}       one node
//	POST /v1/nodes/{id}/fail  crash-stop a node (simulation backends)
//	GET  /v1/topology         hierarchy export (?deep=true for per-LC detail)
//	POST /v1/consolidations   compute a consolidation plan (dry run)
//	GET  /v1/consolidations/status  online consolidation optimizer state, per GM
//	POST /v1/consolidations/start   start the online optimizer on every GM
//	POST /v1/consolidations/stop    stop the online optimizer on every GM
//	GET  /v1/metrics          control-plane counters, gauges and latency series
//	GET  /v1/traces           decision traces: spans with policy evidence
//	                          (?traceId=&entity=&kind=&limit=&offset=)
//	GET  /v1/series           telemetry: list series keys, or windowed queries
//	                          (?entity=&metric=&fromNs=&toNs=&agg=&stepNs=)
//	GET  /v1/watch            telemetry: SSE event stream (?from=seq replay)
//	GET  /v1/experiments/{id} run one reproduced experiment (quick scale)
//	GET  /v1/healthz          liveness
//
// Deployments additionally expose GET /metrics (no version segment): the
// same counters, gauges and histograms in Prometheus text format, rendered
// by api/v1/server.PrometheusHandler.
//
// Errors travel as an ErrorBody envelope with a machine-readable code; the
// client converts codes back into the sentinel errors of this package, so
// `errors.Is(err, apiv1.ErrNotFound)` works across the HTTP boundary.
package apiv1

// Version is the API version segment served and consumed by this package.
const Version = "v1"

// Resources is the 4-dimensional capacity/demand vector of the paper
// (Section II-B): CPU cores, memory in MB, network receive/transmit in
// Mbit/s. It mirrors the internal ResourceVector but is owned by the wire
// contract so internal refactors cannot silently change the API.
type Resources struct {
	CPU       float64 `json:"cpu"`
	MemoryMB  float64 `json:"memoryMb"`
	NetRxMbps float64 `json:"netRxMbps"`
	NetTxMbps float64 `json:"netTxMbps"`
}

// VMSpec is a VM submission request.
type VMSpec struct {
	// ID names the VM; a submission with an empty ID is invalid.
	ID string `json:"id"`
	// Requested is the reservation the scheduler must honour.
	Requested Resources `json:"requested"`
	// TraceID optionally names the synthetic utilization trace driving the
	// VM's demand in simulation (empty = flat at requested).
	TraceID string `json:"traceId,omitempty"`
}

// VM is the monitored view of a virtual machine.
type VM struct {
	ID        string    `json:"id"`
	Requested Resources `json:"requested"`
	// State is the lifecycle state: pending, booting, running, migrating,
	// suspended, terminated or failed.
	State string `json:"state"`
	// Node is the hosting node ("" while pending).
	Node string `json:"node,omitempty"`
	// Used is the most recent measured utilization.
	Used Resources `json:"used"`
	// TraceID echoes the submission's trace name, when any.
	TraceID string `json:"traceId,omitempty"`
}

// Node is the monitored view of a physical node.
type Node struct {
	ID       string    `json:"id"`
	Capacity Resources `json:"capacity"`
	// Power is the node power state: on, suspending, suspended, waking,
	// off, booting or failed.
	Power    string    `json:"power"`
	Used     Resources `json:"used"`
	Reserved Resources `json:"reserved"`
	VMs      []string  `json:"vms,omitempty"`
	Idle     bool      `json:"idle"`
}

// SubmitRequest is the POST /v1/vms body.
type SubmitRequest struct {
	VMs []VMSpec `json:"vms"`
}

// SubmitResult reports per-VM placement outcomes of one submission.
type SubmitResult struct {
	// Placed maps VM ID to the hosting node ID.
	Placed map[string]string `json:"placed"`
	// Unplaced lists VMs the hierarchy could not fit.
	Unplaced []string `json:"unplaced,omitempty"`
}

// GroupSummary is a GM's aggregate as exported in topology responses
// (Section II-B: the GL schedules on summaries, not exact state).
type GroupSummary struct {
	Used      Resources `json:"used"`
	Reserved  Resources `json:"reserved"`
	Total     Resources `json:"total"`
	ActiveLCs int       `json:"activeLcs"`
	AsleepLCs int       `json:"asleepLcs"`
	VMs       int       `json:"vms"`
}

// TopologyLC describes one Local Controller in a deep topology export.
type TopologyLC struct {
	ID       string    `json:"id"`
	Power    string    `json:"power"`
	VMs      int       `json:"vms"`
	Reserved Resources `json:"reserved"`
	Capacity Resources `json:"capacity"`
}

// TopologyGM describes one Group Manager in a topology export. Scheduling
// is the GM's own reported policy configuration — present once the GM's
// summary pushes have carried it, and the authoritative answer for
// deployments whose groups run different policies than the GL's.
type TopologyGM struct {
	ID         string          `json:"id"`
	Addr       string          `json:"addr"`
	Summary    GroupSummary    `json:"summary"`
	Scheduling *SchedulingInfo `json:"scheduling,omitempty"`
	// LCs is present only in deep exports.
	LCs []TopologyLC `json:"lcs,omitempty"`
}

// SchedulingInfo is the deployment's active scheduling configuration: the
// policy names at both scheduling levels, the demand estimator and the
// capacity-view horizon (the telemetry window policies plan against).
type SchedulingInfo struct {
	Dispatch      string `json:"dispatch"`
	Placement     string `json:"placement"`
	Overload      string `json:"overload"`
	Underload     string `json:"underload"`
	Estimator     string `json:"estimator,omitempty"`
	ViewHorizonNs int64  `json:"viewHorizonNs,omitempty"`
}

// Topology is the hierarchy export — the CLI's "live visualizing and
// exporting of the hierarchy organization" (Section II-A).
type Topology struct {
	GL  string       `json:"gl"`
	GMs []TopologyGM `json:"gms"`
	// Scheduling reports the active policies and view horizon.
	Scheduling SchedulingInfo `json:"scheduling"`
}

// Consolidation algorithm names accepted by ConsolidationRequest.
const (
	AlgorithmACO     = "aco"
	AlgorithmFFD     = "ffd"
	AlgorithmOptimal = "optimal"
)

// Demand modes accepted by ConsolidationRequest.
const (
	// DemandRequested prices each VM at its reservation (the default).
	DemandRequested = "requested"
	// DemandP95 prices each VM at the p95 of its windowed telemetry demand
	// (snapshot fallback) — the same chain the online optimizer plans with,
	// so a demand=p95 dry run predicts the online service's packing.
	DemandP95 = "p95"
)

// ConsolidationRequest is the POST /v1/consolidations body: compute a
// migration plan packing the currently running VMs onto fewer hosts
// (Section III). The plan is a dry run — executing it stays with the GMs'
// periodic reconfiguration policy and the online optimizer.
type ConsolidationRequest struct {
	// Algorithm selects the solver: "aco" (default), "ffd" or "optimal".
	Algorithm string `json:"algorithm,omitempty"`
	// Demand selects VM pricing: "requested" (default) or "p95".
	Demand string `json:"demand,omitempty"`
}

// Migration is one VM move of a consolidation plan.
type Migration struct {
	VM   string `json:"vm"`
	From string `json:"from"`
	To   string `json:"to"`
}

// ConsolidationPlan is a computed (not executed) consolidation outcome.
type ConsolidationPlan struct {
	Algorithm  string `json:"algorithm"`
	VMs        int    `json:"vms"`
	HostsTotal int    `json:"hostsTotal"`
	// HostsBefore/HostsAfter count hosts with at least one VM.
	HostsBefore int `json:"hostsBefore"`
	HostsAfter  int `json:"hostsAfter"`
	// Optimal is set when the solver proved optimality.
	Optimal bool `json:"optimal,omitempty"`
	// Cycles is the solver iteration count (ACO cycles, B&B nodes).
	Cycles     int         `json:"cycles,omitempty"`
	Migrations []Migration `json:"migrations,omitempty"`
}

// ConsolidationRound summarizes one completed round of a GM's online
// consolidation optimizer.
type ConsolidationRound struct {
	Round       uint64 `json:"round"`
	AtNs        int64  `json:"atNs"`
	HostsBefore int    `json:"hostsBefore"`
	HostsAfter  int    `json:"hostsAfter"`
	Planned     int    `json:"planned"`
	Executed    int    `json:"executed"`
	Failed      int    `json:"failed"`
	Cancelled   int    `json:"cancelled"`
}

// ConsolidationStatus is one GM's online consolidation optimizer state: the
// continuous packing service that periodically replans from live capacity
// views and executes budgeted migration plans (Section III, run online).
type ConsolidationStatus struct {
	GM      string `json:"gm"`
	Running bool   `json:"running"`
	// InRound is set while a planned migration sequence is executing.
	InRound bool `json:"inRound"`
	// Rounds/Migrations/Cancels/Failures are lifetime totals.
	Rounds     uint64 `json:"rounds"`
	Migrations uint64 `json:"migrations"`
	Cancels    uint64 `json:"cancels"`
	Failures   uint64 `json:"failures"`
	// Budget is the per-round migration cap (< 0 = unlimited).
	Budget   int   `json:"budget"`
	PeriodNs int64 `json:"periodNs"`
	// LastRound is the most recently completed round, when any.
	LastRound *ConsolidationRound `json:"lastRound,omitempty"`
}

// ConsolidationStatusList is the body of the /v1/consolidations/{status,
// start,stop} routes: one entry per reachable GM, sorted by GM ID.
type ConsolidationStatusList struct {
	Items []ConsolidationStatus `json:"items"`
}

// SeriesSummary describes one latency/size series statistically.
type SeriesSummary struct {
	N      int     `json:"n"`
	Mean   float64 `json:"mean"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	P50    float64 `json:"p50"`
	P95    float64 `json:"p95"`
	P99    float64 `json:"p99"`
	Stddev float64 `json:"stddev"`
}

// MetricsSnapshot is the GET /v1/metrics body: control-plane counters (VM
// placements, relocations, failovers, and the state-recovery flow —
// gm.state-syncs, gl.state-restores, gm.recoveries, gm.monitor-rejects,
// gm.migration-retries, gm.migration-abandoned), point-in-time gauges
// (telemetry volume), duration series summaries (including
// gm.recovery-latency, the failure-declared→state-restored handoff time in
// milliseconds) and fixed-bucket histograms.
type MetricsSnapshot struct {
	Counters map[string]int64         `json:"counters,omitempty"`
	Gauges   map[string]float64       `json:"gauges,omitempty"`
	Series   map[string]SeriesSummary `json:"series,omitempty"`
	// Histograms carries the fixed-bucket distribution behind each series:
	// lifetime count/sum/extremes plus per-bucket counts (the Prometheus
	// /metrics exposition renders from these).
	Histograms map[string]Histogram `json:"histograms,omitempty"`
}

// Histogram is one observed series' fixed-bucket distribution. Counts[i]
// holds observations <= Bounds[i] (and greater than the previous bound);
// the final entry past the last bound is the +Inf overflow bucket.
type Histogram struct {
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// ---------------------------------------------------------------------------
// Decision traces
// ---------------------------------------------------------------------------

// TraceSpan is one finished decision span of the autonomic loop, as served
// by GET /v1/traces: who decided (policy), over what evidence (view,
// candidates), what it chose and how it ended. Spans sharing a TraceID form
// one causal chain (e.g. submit→dispatch→placement); Parent links a span to
// its parent span within the trace.
type TraceSpan struct {
	TraceID string `json:"traceId"`
	SpanID  string `json:"spanId"`
	Parent  string `json:"parent,omitempty"`
	// Kind is the decision kind: dispatch, placement, relocation,
	// migration, energy, consolidation.round or consolidation.migration.
	Kind string `json:"kind"`
	// Entity is the decision subject ("vm/<id>", "node/<id>", ...).
	Entity string `json:"entity,omitempty"`
	// Policy is the deciding scheduling policy's name.
	Policy string `json:"policy,omitempty"`
	// Target is the chosen destination, when any.
	Target  string `json:"target,omitempty"`
	Outcome string `json:"outcome,omitempty"`
	StartNs int64  `json:"startNs"`
	EndNs   int64  `json:"endNs"`
	// View is the capacity-view evidence the decision was priced from.
	View *TraceView `json:"view,omitempty"`
	// Candidates lists every considered target with per-candidate
	// rejection reasons, in policy-visit order.
	Candidates []TraceCandidate  `json:"candidates,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceView pins a decision to the telemetry view it consumed.
type TraceView struct {
	// Gen is the series append generation the view was reduced from.
	Gen       uint64 `json:"gen"`
	Samples   int    `json:"samples"`
	Fresh     bool   `json:"fresh"`
	Truncated bool   `json:"truncated,omitempty"`
}

// TraceCandidate is one considered target and, if rejected, why.
type TraceCandidate struct {
	ID     string `json:"id"`
	Chosen bool   `json:"chosen,omitempty"`
	Reason string `json:"reason,omitempty"`
}

// TraceQuery filters GET /v1/traces. Zero filter fields match everything;
// Limit/Offset paginate the matching spans.
type TraceQuery struct {
	TraceID string
	Entity  string
	Kind    string
	Limit   int
	Offset  int
}

// TraceList is the paginated GET /v1/traces body, ordered by trace ID then
// span start time.
type TraceList struct {
	Items      []TraceSpan `json:"items"`
	Total      int         `json:"total"`
	NextOffset int         `json:"nextOffset,omitempty"`
}

// ---------------------------------------------------------------------------
// Telemetry: time series and events
// ---------------------------------------------------------------------------

// Telemetry timestamps are runtime-relative nanoseconds: virtual time for a
// simulated backend, process uptime for a live one. They order and window
// samples; they are not wall-clock instants.

// SeriesKey names one telemetry series: an entity ("node/<id>", "vm/<id>",
// "gm/<id>") and a metric (e.g. "util", "cpu.used").
type SeriesKey struct {
	Entity string `json:"entity"`
	Metric string `json:"metric"`
}

// SeriesList is the paginated GET /v1/series key listing (no entity param).
type SeriesList struct {
	Items      []SeriesKey `json:"items"`
	Total      int         `json:"total"`
	NextOffset int         `json:"nextOffset,omitempty"`
}

// SeriesPoint is one sample of a series query result.
type SeriesPoint struct {
	AtNs  int64   `json:"atNs"`
	Value float64 `json:"value"`
}

// SeriesQuery parameterizes a windowed series query. The window is
// [FromNs, ToNs] (ToNs <= 0 = unbounded); Agg + StepNs downsample the raw
// window into fixed buckets ("min", "max", "avg", "last" or any "pXX"
// percentile); Limit/Offset paginate the resulting points.
type SeriesQuery struct {
	Entity string
	Metric string
	FromNs int64
	ToNs   int64
	Agg    string
	StepNs int64
	Limit  int
	Offset int
}

// SeriesTier describes one downsampled retention tier of a series: history
// evicted from the raw ring survives here at Step resolution.
type SeriesTier struct {
	StepNs   int64 `json:"stepNs"`
	Capacity int   `json:"capacity"`
	// Points is the tier's retained bucket count.
	Points int `json:"points"`
}

// SeriesData is the GET /v1/series windowed-query body. Besides the queried
// points it reports the series' retention state: the retained range
// [OldestNs, NewestNs], where full-resolution coverage begins (RawFromNs),
// the tier ladder, and whether THIS query's window reached into decimated or
// evicted history (Truncated) — the eviction watermark callers use to
// distinguish a full window from a partial one.
type SeriesData struct {
	Entity string `json:"entity"`
	Metric string `json:"metric"`
	// Agg and StepNs echo the downsampling request ("" / 0 for raw).
	Agg    string        `json:"agg,omitempty"`
	StepNs int64         `json:"stepNs,omitempty"`
	Points []SeriesPoint `json:"points"`
	// Total counts the window's points before pagination.
	Total      int `json:"total"`
	NextOffset int `json:"nextOffset,omitempty"`
	// Retention metadata (zero-valued for an unknown series).
	OldestNs  int64        `json:"oldestNs,omitempty"`
	NewestNs  int64        `json:"newestNs,omitempty"`
	RawFromNs int64        `json:"rawFromNs,omitempty"`
	Truncated bool         `json:"truncated,omitempty"`
	Tiers     []SeriesTier `json:"tiers,omitempty"`
	// Summary is the window's reduced distribution, answered from the
	// store's mergeable quantile sketches (omitted for an empty window).
	Summary *SeriesWindowSummary `json:"summary,omitempty"`
}

// SeriesWindowSummary is the sketch-derived statistical summary of one
// queried series window. Weight counts the raw samples behind the summary —
// on a decimated window it exceeds Count (the stitched point count) because
// each retention bucket stands for the samples folded into it. P50/P95 carry
// a relative error of at most QuantileError (0 when the store runs in exact
// reference mode).
type SeriesWindowSummary struct {
	Count         int     `json:"count"`
	Weight        uint64  `json:"weight"`
	Min           float64 `json:"min"`
	Max           float64 `json:"max"`
	Avg           float64 `json:"avg"`
	P50           float64 `json:"p50"`
	P95           float64 `json:"p95"`
	QuantileError float64 `json:"quantileError,omitempty"`
}

// Event is one entry of the telemetry journal as served by GET /v1/watch:
// threshold crossings (node.overload, node.underload, node.normal), VM
// lifecycle outcomes (vm.state) and hierarchy membership changes
// (hierarchy.*). Seq is strictly monotonic per deployment and is the replay
// cursor (?from=seq).
type Event struct {
	Seq    uint64            `json:"seq"`
	AtNs   int64             `json:"atNs"`
	Type   string            `json:"type"`
	Entity string            `json:"entity,omitempty"`
	Attrs  map[string]string `json:"attrs,omitempty"`
}

// Experiment is one reproduced table/figure of the paper's evaluation,
// rendered for transport.
type Experiment struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Table string   `json:"table"`
	Notes []string `json:"notes,omitempty"`
}

// ---------------------------------------------------------------------------
// Pagination
// ---------------------------------------------------------------------------

// VMList is the paginated GET /v1/vms body.
type VMList struct {
	Items []VM `json:"items"`
	// Total is the collection size before pagination.
	Total int `json:"total"`
	// NextOffset is set when more items remain past this page.
	NextOffset int `json:"nextOffset,omitempty"`
}

// NodeList is the paginated GET /v1/nodes body.
type NodeList struct {
	Items      []Node `json:"items"`
	Total      int    `json:"total"`
	NextOffset int    `json:"nextOffset,omitempty"`
}

// ---------------------------------------------------------------------------
// Error envelope
// ---------------------------------------------------------------------------

// Error codes carried in the envelope.
const (
	CodeInvalid     = "invalid_argument"
	CodeNotFound    = "not_found"
	CodeUnsupported = "unsupported"
	CodeUnavailable = "unavailable"
	CodeInternal    = "internal"
)

// ErrorBody is the JSON error envelope every /v1 route returns on failure.
type ErrorBody struct {
	Error ErrorDetail `json:"error"`
}

// ErrorDetail carries the machine-readable code and human message.
type ErrorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}
