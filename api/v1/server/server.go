// Package server mounts the api/v1 resource routes on net/http. It is
// backend-agnostic: hand it any apiv1.Backend (simulated cluster, live
// hierarchy, or even a remote client for chaining) and it serves the same
// /v1 contract — method-routed resource paths, JSON bodies, pagination on
// collections, a machine-readable error envelope and capped request bodies.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	apiv1 "snooze/api/v1"
)

// DefaultMaxBodyBytes caps POST bodies (a submission of thousands of VM
// specs fits comfortably; a runaway or hostile body does not).
const DefaultMaxBodyBytes = 1 << 20

// Server serves the /v1 control-plane routes from a Backend.
type Server struct {
	backend apiv1.Backend
	// MaxBodyBytes caps request bodies (DefaultMaxBodyBytes when zero).
	MaxBodyBytes int64
	// Timeout bounds each request's backend call (0 = no server-side bound;
	// the backend's own timeouts still apply).
	Timeout time.Duration
	// StreamContext, when non-nil, additionally bounds long-lived streams
	// (/v1/watch): cancelling it ends every open stream without touching
	// in-flight short requests — wire it to the process's shutdown signal so
	// http.Server.Shutdown can drain instead of waiting out SSE clients.
	StreamContext context.Context
}

// New creates a server for the backend.
func New(backend apiv1.Backend) *Server {
	return &Server{backend: backend}
}

// Handler returns the HTTP handler with every /v1 route mounted. Mount it
// at the mux root: route patterns carry the /v1 prefix themselves.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/vms", s.handleListVMs)
	mux.HandleFunc("POST /v1/vms", s.handleSubmitVMs)
	mux.HandleFunc("GET /v1/vms/{id}", s.handleGetVM)
	mux.HandleFunc("GET /v1/nodes", s.handleListNodes)
	mux.HandleFunc("GET /v1/nodes/{id}", s.handleGetNode)
	mux.HandleFunc("POST /v1/nodes/{id}/fail", s.handleFailNode)
	mux.HandleFunc("GET /v1/topology", s.handleTopology)
	mux.HandleFunc("POST /v1/consolidations", s.handleConsolidate)
	mux.HandleFunc("GET /v1/consolidations/status", s.handleConsolidationCtl(apiv1.Backend.ConsolidationStatus))
	mux.HandleFunc("POST /v1/consolidations/start", s.handleConsolidationCtl(apiv1.Backend.StartConsolidation))
	mux.HandleFunc("POST /v1/consolidations/stop", s.handleConsolidationCtl(apiv1.Backend.StopConsolidation))
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/traces", s.handleTraces)
	mux.HandleFunc("GET /v1/series", s.handleSeries)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	mux.HandleFunc("GET /v1/experiments/{id}", s.handleExperiment)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("/v1/", func(w http.ResponseWriter, _ *http.Request) {
		writeError(w, http.StatusNotFound, apiv1.CodeNotFound, "no such route")
	})
	return mux
}

func (s *Server) ctx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.Timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.Timeout)
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

func (s *Server) handleListVMs(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	limit, offset, ok := pageParams(w, r)
	if !ok {
		return
	}
	vms, err := s.backend.ListVMs(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	lo, hi, next := apiv1.Page(len(vms), limit, offset)
	writeJSON(w, http.StatusOK, apiv1.VMList{Items: emptyAsSlice(vms[lo:hi]), Total: len(vms), NextOffset: next})
}

func (s *Server) handleSubmitVMs(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	var req apiv1.SubmitRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	result, err := s.backend.SubmitVMs(ctx, req.VMs)
	if err != nil {
		s.fail(w, err)
		return
	}
	// 201: the accepted VMs now exist as resources under /v1/vms.
	writeJSON(w, http.StatusCreated, result)
}

func (s *Server) handleGetVM(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	vm, err := s.backend.GetVM(ctx, r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, vm)
}

func (s *Server) handleListNodes(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	limit, offset, ok := pageParams(w, r)
	if !ok {
		return
	}
	nodes, err := s.backend.ListNodes(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	lo, hi, next := apiv1.Page(len(nodes), limit, offset)
	writeJSON(w, http.StatusOK, apiv1.NodeList{Items: emptyAsSlice(nodes[lo:hi]), Total: len(nodes), NextOffset: next})
}

func (s *Server) handleGetNode(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	node, err := s.backend.GetNode(ctx, r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, node)
}

func (s *Server) handleFailNode(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	if err := s.backend.FailNode(ctx, r.PathValue("id")); err != nil {
		s.fail(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	deep, err := parseBool(r.URL.Query().Get("deep"))
	if err != nil {
		writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "deep: want true or false")
		return
	}
	topo, err := s.backend.Topology(ctx, deep)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, topo)
}

func (s *Server) handleConsolidate(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	var req apiv1.ConsolidationRequest
	if !s.readJSON(w, r, &req) {
		return
	}
	plan, err := s.backend.Consolidate(ctx, req)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, plan)
}

// handleConsolidationCtl serves the three online-optimizer control routes,
// parameterized by the Backend method they invoke.
func (s *Server) handleConsolidationCtl(call func(apiv1.Backend, context.Context) (apiv1.ConsolidationStatusList, error)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.ctx(r)
		defer cancel()
		list, err := call(s.backend, ctx)
		if err != nil {
			s.fail(w, err)
			return
		}
		list.Items = emptyAsSlice(list.Items)
		writeJSON(w, http.StatusOK, list)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	snap, err := s.backend.Metrics(ctx)
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// handleTraces serves the decision-trace store: finished spans of the
// autonomic loop, filterable by trace ID, entity and span kind.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	limit, offset, ok := pageParams(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	list, err := s.backend.ListTraces(ctx, apiv1.TraceQuery{
		TraceID: q.Get("traceId"),
		Entity:  q.Get("entity"),
		Kind:    q.Get("kind"),
		Limit:   limit,
		Offset:  offset,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	list.Items = emptyAsSlice(list.Items)
	writeJSON(w, http.StatusOK, list)
}

// handleSeries serves the telemetry store: without an entity parameter it
// lists the series keys (paginated); with entity+metric it runs a windowed,
// optionally downsampled query.
func (s *Server) handleSeries(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	q := r.URL.Query()
	limit, offset, ok := pageParams(w, r)
	if !ok {
		return
	}
	if q.Get("entity") == "" && q.Get("metric") == "" {
		keys, err := s.backend.ListSeries(ctx)
		if err != nil {
			s.fail(w, err)
			return
		}
		lo, hi, next := apiv1.Page(len(keys), limit, offset)
		writeJSON(w, http.StatusOK, apiv1.SeriesList{Items: emptyAsSlice(keys[lo:hi]), Total: len(keys), NextOffset: next})
		return
	}
	sq := apiv1.SeriesQuery{
		Entity: q.Get("entity"),
		Metric: q.Get("metric"),
		Agg:    q.Get("agg"),
		Limit:  limit,
		Offset: offset,
	}
	for _, p := range []struct {
		name string
		dst  *int64
	}{{"fromNs", &sq.FromNs}, {"toNs", &sq.ToNs}, {"stepNs", &sq.StepNs}} {
		if v := q.Get(p.name); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, p.name+": want an integer (nanoseconds)")
				return
			}
			*p.dst = n
		}
	}
	data, err := s.backend.QuerySeries(ctx, sq)
	if err != nil {
		s.fail(w, err)
		return
	}
	if data.Points == nil {
		data.Points = []apiv1.SeriesPoint{}
	}
	writeJSON(w, http.StatusOK, data)
}

// handleWatch serves the telemetry event stream as Server-Sent Events:
// retained events with seq >= ?from replay first, then the stream follows
// live until the client disconnects. Each event travels as
//
//	id: <seq>
//	event: <type>
//	data: <Event JSON>
//
// A consumer that falls too far behind receives a final "error" event and
// should reconnect with from = last seen seq + 1. The watch deliberately
// ignores the server's request timeout — streams live until either side
// hangs up.
//
// The standard SSE Last-Event-ID header is honoured as an alias for ?from=:
// a reconnecting EventSource (or the typed client's WatchResume) that saw
// event N resumes at N+1. An explicit ?from= query wins over the header.
func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	var from uint64
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "from: want a non-negative integer")
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "Last-Event-ID: want a non-negative integer")
			return
		}
		from = n + 1
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, apiv1.CodeInternal, "response writer cannot stream")
		return
	}
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if s.StreamContext != nil {
		stop := context.AfterFunc(s.StreamContext, cancel)
		defer stop()
	}
	stream, err := s.backend.Watch(ctx, from)
	if err != nil {
		s.fail(w, err)
		return
	}
	defer stream.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				if serr := stream.Err(); serr != nil {
					// json.Marshal keeps the payload valid JSON for any
					// error text (Go %q escapes are not JSON).
					msg, _ := json.Marshal(serr.Error())
					fmt.Fprintf(w, "event: error\ndata: %s\n\n", msg)
					flusher.Flush()
				}
				return
			}
			data, err := json.Marshal(ev)
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
			flusher.Flush()
		case <-ctx.Done():
			return
		}
	}
}

func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := s.ctx(r)
	defer cancel()
	exp, err := s.backend.Experiment(ctx, r.PathValue("id"))
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, exp)
}

// ---------------------------------------------------------------------------
// Plumbing
// ---------------------------------------------------------------------------

// readJSON decodes a capped request body; on failure it writes the 400
// envelope and returns false.
func (s *Server) readJSON(w http.ResponseWriter, r *http.Request, dst any) bool {
	maxBytes := s.MaxBodyBytes
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBodyBytes
	}
	body := http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, apiv1.CodeInvalid, "request body too large")
			return false
		}
		writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "bad request body: "+err.Error())
		return false
	}
	return true
}

// fail maps backend errors onto status codes + envelope.
func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, apiv1.ErrNotFound):
		writeError(w, http.StatusNotFound, apiv1.CodeNotFound, err.Error())
	case errors.Is(err, apiv1.ErrInvalid):
		writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, err.Error())
	case errors.Is(err, apiv1.ErrUnsupported):
		writeError(w, http.StatusNotImplemented, apiv1.CodeUnsupported, err.Error())
	case errors.Is(err, apiv1.ErrUnavailable):
		writeError(w, http.StatusServiceUnavailable, apiv1.CodeUnavailable, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, apiv1.CodeUnavailable, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, apiv1.CodeInternal, err.Error())
	}
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiv1.ErrorBody{Error: apiv1.ErrorDetail{Code: code, Message: msg}})
}

// pageParams parses ?limit=&offset=; on failure it writes the 400 envelope.
func pageParams(w http.ResponseWriter, r *http.Request) (limit, offset int, ok bool) {
	q := r.URL.Query()
	var err error
	if v := q.Get("limit"); v != "" {
		if limit, err = strconv.Atoi(v); err != nil || limit < 0 {
			writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "limit: want a non-negative integer")
			return 0, 0, false
		}
	}
	if v := q.Get("offset"); v != "" {
		if offset, err = strconv.Atoi(v); err != nil || offset < 0 {
			writeError(w, http.StatusBadRequest, apiv1.CodeInvalid, "offset: want a non-negative integer")
			return 0, 0, false
		}
	}
	return limit, offset, true
}

func parseBool(v string) (bool, error) {
	switch v {
	case "", "false", "0":
		return false, nil
	case "true", "1":
		return true, nil
	default:
		return false, errors.New("bad bool")
	}
}

// emptyAsSlice keeps JSON arrays as [] instead of null for empty pages.
func emptyAsSlice[T any](s []T) []T {
	if s == nil {
		return []T{}
	}
	return s
}
