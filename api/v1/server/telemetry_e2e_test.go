package server

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	apiv1 "snooze/api/v1"
	apiclient "snooze/api/v1/client"
	"snooze/api/v1/simbackend"
	"snooze/internal/cluster"
	"snooze/internal/scheduling"
	"snooze/internal/workload"
)

// TestBurstyOverloadObservableViaWatch is the telemetry subsystem's
// end-to-end path: a bursty simulated workload overloads its host, the GM's
// detector publishes node.overload events, relocation runs off those events,
// and an operator sees it all through GET /v1/watch (live + ?from=seq
// replay) and GET /v1/series — client → HTTP → backend → hierarchy.
func TestBurstyOverloadObservableViaWatch(t *testing.T) {
	top := workload.Grid5000Topology(4, 1)
	cfg := cluster.DefaultConfig(top, 7)
	reg := workload.NewRegistry()
	reg.Register("bursty", workload.BurstyTrace{
		Seed: 7, Baseline: 0.2, BurstTo: 1.0, BurstProb: 0.4,
		Slot: 2 * time.Minute, MemBase: 0.3,
	})
	cfg.Hypervisor.Traces = reg
	th := scheduling.Thresholds{Overload: 0.85, Underload: 0}
	cfg.LC.Thresholds = th
	cfg.Manager.Overload = scheduling.OverloadRelocation{Thresholds: th}
	c := cluster.New(cfg)
	c.Settle(30 * time.Second)
	if c.Leader() == nil {
		t.Fatal("hierarchy did not form")
	}

	backend := simbackend.New(c, 0)
	srv := httptest.NewServer(New(backend).Handler())
	defer srv.Close()
	cli := apiclient.New(srv.URL)
	ctx := context.Background()

	// First-fit packs all four bursty VMs (4 × 2 CPU on an 8-CPU node): a
	// burst drives the host to 100% of reservation, past the 85% threshold.
	specs := make([]apiv1.VMSpec, 4)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("web-%02d", i),
			Requested: apiv1.Resources{CPU: 2, MemoryMB: 4096, NetRxMbps: 100, NetTxMbps: 100},
			TraceID:   "bursty",
		}
	}
	result, err := cli.SubmitVMs(ctx, specs)
	if err != nil || len(result.Placed) != 4 {
		t.Fatalf("submit: %+v %v", result, err)
	}

	// Open the live watch before driving time, then run the bursts.
	stream, err := cli.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	c.Settle(30 * time.Minute)

	var firstOverload apiv1.Event
	placed, lastSeq := 0, uint64(0)
	deadline := time.After(30 * time.Second)
collect:
	for {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				t.Fatalf("watch ended early: %v", stream.Err())
			}
			if ev.Seq <= lastSeq {
				t.Fatalf("sequence went backwards: %d after %d", ev.Seq, lastSeq)
			}
			lastSeq = ev.Seq
			switch ev.Type {
			case "vm.state":
				if ev.Attrs["state"] == "placed" {
					placed++
				}
			case "node.overload":
				if firstOverload.Seq == 0 {
					firstOverload = ev
				}
				if placed > 0 {
					break collect
				}
			}
		case <-deadline:
			t.Fatal("no node.overload event within deadline")
		}
	}
	if firstOverload.Entity == "" || firstOverload.Attrs["util"] == "" {
		t.Fatalf("overload event incomplete: %+v", firstOverload)
	}

	// Relocation must have been triggered through the detector path.
	if c.Metrics.Count("gm.detector-relocations") == 0 {
		t.Fatal("no detector-driven relocation triggers")
	}
	if c.Metrics.Count("gm.relocations") == 0 {
		t.Fatal("overload never produced relocation moves")
	}

	// Replay: a second watch from the overload's seq must start exactly
	// there (the journal retains it).
	replay, err := cli.Watch(ctx, firstOverload.Seq)
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Close()
	select {
	case ev, ok := <-replay.Events():
		if !ok {
			t.Fatalf("replay ended: %v", replay.Err())
		}
		if ev.Seq != firstOverload.Seq || ev.Type != "node.overload" {
			t.Fatalf("replay from %d delivered %+v", firstOverload.Seq, ev)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("replay delivered nothing")
	}

	// The series behind the event: the overloaded node's utilization history
	// must contain samples above the threshold, and downsampling must cap
	// the point count.
	data, err := cli.QuerySeries(ctx, apiv1.SeriesQuery{
		Entity: firstOverload.Entity, Metric: "util", Agg: "max", StepNs: int64(time.Minute),
	})
	if err != nil {
		t.Fatal(err)
	}
	if data.Total == 0 {
		t.Fatal("no util series for the overloaded node")
	}
	peak := 0.0
	for _, p := range data.Points {
		if p.Value > peak {
			peak = p.Value
		}
	}
	if peak <= 0.85 {
		t.Fatalf("series never shows the overload: peak=%v", peak)
	}
	raw, err := cli.QuerySeries(ctx, apiv1.SeriesQuery{Entity: firstOverload.Entity, Metric: "util"})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Total <= data.Total {
		t.Fatalf("downsampling did not reduce: raw=%d buckets=%d", raw.Total, data.Total)
	}

	// Key listing includes the node series, paginated.
	keys, err := cli.ListSeries(ctx)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, k := range keys {
		if k.Entity == firstOverload.Entity && k.Metric == "util" {
			found = true
		}
	}
	if !found {
		t.Fatalf("series listing misses %s/util (%d keys)", firstOverload.Entity, len(keys))
	}
}

// TestWatchSeriesValidation exercises the error envelopes of the telemetry
// routes.
func TestWatchSeriesValidation(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	for _, q := range []apiv1.SeriesQuery{
		{Entity: "node/n1"}, // missing metric
		{Metric: "util"},    // missing entity
		{Entity: "node/n1", Metric: "util", Agg: "median"},      // bad agg
		{Entity: "node/n1", Metric: "util", StepNs: 1e9},        // step without agg
		{Entity: "node/n1", Metric: "util", FromNs: 9, ToNs: 3}, // inverted window
	} {
		if _, err := f.cli.QuerySeries(ctx, q); err == nil {
			t.Fatalf("query %+v accepted", q)
		}
	}
	// Unknown series is an empty window, not an error.
	data, err := f.cli.QuerySeries(ctx, apiv1.SeriesQuery{Entity: "node/ghost", Metric: "util"})
	if err != nil || data.Total != 0 {
		t.Fatalf("unknown series: %+v %v", data, err)
	}
	// Bad ?from on the watch is a 400.
	resp, err := f.srv.Client().Get(f.srv.URL + "/v1/watch?from=minus-one")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("bad from: status %d", resp.StatusCode)
	}
}
