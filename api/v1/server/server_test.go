package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	apiv1 "snooze/api/v1"
	apiclient "snooze/api/v1/client"
	"snooze/api/v1/simbackend"
	"snooze/internal/cluster"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// fixture wires a settled simulated cluster behind an httptest /v1 server
// with a typed client — the end-to-end client → server → cluster path.
type fixture struct {
	backend *simbackend.Backend
	srv     *httptest.Server
	cli     *apiclient.Client
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(8, 2), 42))
	c.Settle(30 * time.Second)
	if c.Leader() == nil {
		t.Fatal("hierarchy did not form")
	}
	backend := simbackend.New(c, 0)
	srv := httptest.NewServer(New(backend).Handler())
	t.Cleanup(srv.Close)
	return &fixture{backend: backend, srv: srv, cli: apiclient.New(srv.URL)}
}

func TestSubmitAndWaitEndToEnd(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	specs := make([]apiv1.VMSpec, 5)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("vm-%02d", i),
			Requested: apiv1.Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10},
		}
	}
	result, err := f.cli.SubmitVMs(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Placed)+len(result.Unplaced) != len(specs) {
		t.Fatalf("submit outcome incomplete: %+v", result)
	}
	if len(result.Placed) != len(specs) {
		t.Fatalf("expected all VMs placed on an empty 8-node cluster: %+v", result)
	}

	// Let the VMs boot into the running state.
	f.backend.Cluster().Settle(30 * time.Second)

	vms, err := f.cli.ListVMs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(vms) != len(specs) {
		t.Fatalf("ListVMs: got %d, want %d", len(vms), len(specs))
	}
	for i := 1; i < len(vms); i++ {
		if vms[i-1].ID >= vms[i].ID {
			t.Fatalf("ListVMs not sorted: %q >= %q", vms[i-1].ID, vms[i].ID)
		}
	}

	vm, err := f.cli.GetVM(ctx, "vm-03")
	if err != nil {
		t.Fatal(err)
	}
	if vm.Node != result.Placed["vm-03"] {
		t.Fatalf("GetVM node %q, submit said %q", vm.Node, result.Placed["vm-03"])
	}
	if vm.State != types.VMRunning.String() {
		t.Fatalf("vm-03 state %q after settle", vm.State)
	}

	nodes, err := f.cli.ListNodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 8 {
		t.Fatalf("ListNodes: got %d, want 8", len(nodes))
	}
	node, err := f.cli.GetNode(ctx, vm.Node)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range node.VMs {
		if id == "vm-03" {
			found = true
		}
	}
	if !found {
		t.Fatalf("node %s does not list vm-03: %+v", node.ID, node.VMs)
	}
}

func TestTopologyShallowAndDeep(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	topo, err := f.cli.Topology(ctx, false)
	if err != nil {
		t.Fatal(err)
	}
	if topo.GL == "" || len(topo.GMs) == 0 {
		t.Fatalf("topology: %+v", topo)
	}
	for _, gm := range topo.GMs {
		if len(gm.LCs) != 0 {
			t.Fatal("shallow topology must not include LC detail")
		}
	}

	deep, err := f.cli.Topology(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	lcs := 0
	for _, gm := range deep.GMs {
		lcs += len(gm.LCs)
	}
	if lcs != 8 {
		t.Fatalf("deep topology lists %d LCs, want 8", lcs)
	}
}

func TestConsolidateMetricsAndFail(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	specs := make([]apiv1.VMSpec, 6)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("cvm-%02d", i),
			Requested: apiv1.Resources{CPU: 0.5, MemoryMB: 512, NetRxMbps: 5, NetTxMbps: 5},
		}
	}
	if _, err := f.cli.SubmitVMs(ctx, specs); err != nil {
		t.Fatal(err)
	}
	f.backend.Cluster().Settle(30 * time.Second)

	plan, err := f.cli.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: apiv1.AlgorithmFFD})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Algorithm != apiv1.AlgorithmFFD || plan.VMs != len(specs) {
		t.Fatalf("plan: %+v", plan)
	}
	if plan.HostsAfter > plan.HostsBefore {
		t.Fatalf("consolidation made things worse: %+v", plan)
	}

	if _, err := f.cli.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: "simulated-annealing"}); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("unknown algorithm: %v", err)
	}

	snap, err := f.cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["gl.submissions"] == 0 {
		t.Fatalf("metrics missing gl.submissions: %+v", snap.Counters)
	}

	// Fault injection works on the simulated backend.
	victim := "lc-0000"
	if err := f.cli.FailNode(ctx, victim); err != nil {
		t.Fatal(err)
	}
	node, err := f.cli.GetNode(ctx, victim)
	if err != nil {
		t.Fatal(err)
	}
	if node.Power != types.PowerFailed.String() {
		t.Fatalf("node power after fail: %q", node.Power)
	}
	if err := f.cli.FailNode(ctx, "no-such-node"); !errors.Is(err, apiv1.ErrNotFound) {
		t.Fatalf("fail unknown node: %v", err)
	}
}

func TestPagination(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	page, err := f.cli.ListNodesPage(ctx, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 3 || page.Total != 8 || page.NextOffset != 3 {
		t.Fatalf("first page: items=%d total=%d next=%d", len(page.Items), page.Total, page.NextOffset)
	}
	var all []string
	offset := 0
	for {
		page, err := f.cli.ListNodesPage(ctx, 3, offset)
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range page.Items {
			all = append(all, n.ID)
		}
		if page.NextOffset == 0 {
			break
		}
		offset = page.NextOffset
	}
	if len(all) != 8 {
		t.Fatalf("paged walk saw %d nodes, want 8", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1] >= all[i] {
			t.Fatalf("paged walk out of order: %v", all)
		}
	}
}

func TestErrorEnvelopes(t *testing.T) {
	f := newFixture(t)

	get := func(path string) (*http.Response, apiv1.ErrorBody) {
		t.Helper()
		resp, err := http.Get(f.srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%s: Content-Type %q", path, ct)
		}
		var body apiv1.ErrorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: bad envelope: %v", path, err)
		}
		return resp, body
	}

	resp, body := get("/v1/vms/no-such-vm")
	if resp.StatusCode != http.StatusNotFound || body.Error.Code != apiv1.CodeNotFound {
		t.Fatalf("missing vm: %d %+v", resp.StatusCode, body)
	}
	resp, body = get("/v1/experiments/zz99")
	if resp.StatusCode != http.StatusNotFound || body.Error.Code != apiv1.CodeNotFound {
		t.Fatalf("missing experiment: %d %+v", resp.StatusCode, body)
	}
	resp, body = get("/v1/no-such-route")
	if resp.StatusCode != http.StatusNotFound || body.Error.Code != apiv1.CodeNotFound {
		t.Fatalf("unknown route: %d %+v", resp.StatusCode, body)
	}
	resp, body = get("/v1/topology?deep=banana")
	if resp.StatusCode != http.StatusBadRequest || body.Error.Code != apiv1.CodeInvalid {
		t.Fatalf("bad deep param: %d %+v", resp.StatusCode, body)
	}
	resp, body = get("/v1/nodes?limit=-1")
	if resp.StatusCode != http.StatusBadRequest || body.Error.Code != apiv1.CodeInvalid {
		t.Fatalf("bad limit: %d %+v", resp.StatusCode, body)
	}

	// Malformed body → 400 envelope.
	post, err := http.Post(f.srv.URL+"/v1/vms", "application/json", strings.NewReader("{oops"))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body status: %d", post.StatusCode)
	}

	// Validation errors survive the wire as typed sentinels.
	ctx := context.Background()
	if _, err := f.cli.SubmitVMs(ctx, nil); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("empty batch: %v", err)
	}
	dup := []apiv1.VMSpec{{ID: "a"}, {ID: "a"}}
	if _, err := f.cli.SubmitVMs(ctx, dup); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("duplicate IDs: %v", err)
	}
}

func TestBodyCap(t *testing.T) {
	f := newFixture(t)
	srv := httptest.NewServer(func() http.Handler {
		s := New(f.backend)
		s.MaxBodyBytes = 256
		return s.Handler()
	}())
	defer srv.Close()

	big := strings.NewReader(`{"vms":[{"id":"` + strings.Repeat("x", 1024) + `"}]}`)
	resp, err := http.Post(srv.URL+"/v1/vms", "application/json", big)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status: %d", resp.StatusCode)
	}
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	if err := f.cli.Healthz(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRoute(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full (quick-scale) experiment")
	}
	f := newFixture(t)
	exp, err := f.cli.Experiment(context.Background(), "e4")
	if err != nil {
		t.Fatal(err)
	}
	if exp.ID != "E4" && exp.ID != "e4" {
		t.Fatalf("experiment id: %+v", exp.ID)
	}
	if !strings.Contains(exp.Table, "ACO") {
		t.Fatalf("experiment table looks wrong:\n%s", exp.Table)
	}
}

// unsupportedBackend exercises the 501 mapping without a real backend.
type unsupportedBackend struct{ apiv1.Backend }

func (unsupportedBackend) FailNode(context.Context, string) error {
	return apiv1.ErrUnsupported
}

func TestUnsupportedMapsTo501(t *testing.T) {
	srv := httptest.NewServer(New(unsupportedBackend{}).Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/nodes/n1/fail", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("status %d body %s", resp.StatusCode, data)
	}
	if err := apiclient.New(srv.URL).FailNode(context.Background(), "n1"); !errors.Is(err, apiv1.ErrUnsupported) {
		t.Fatalf("client mapping: %v", err)
	}
}
