package server

// Prometheus text-format exposition (stdlib only, format version 0.0.4).
// The handler renders the backend's MetricsSnapshot — counters, gauges and
// fixed-bucket histograms — so it works over any Backend, including the
// typed HTTP client chaining to a remote deployment. Mount it at /metrics
// (outside the /v1 prefix, following Prometheus convention).

import (
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	apiv1 "snooze/api/v1"
)

// PrometheusHandler serves the backend's metrics in Prometheus text format.
func (s *Server) PrometheusHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := s.ctx(r)
		defer cancel()
		snap, err := s.backend.Metrics(ctx)
		if err != nil {
			s.fail(w, err)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte(RenderPrometheus(snap)))
	})
}

// RenderPrometheus renders a metrics snapshot as Prometheus text format:
// counters as `snooze_<name>_total`, gauges as `snooze_<name>`, histograms
// as the conventional `_bucket`/`_sum`/`_count` triplet with cumulative
// `le` labels. Metric names are sanitized (dots and dashes to underscores),
// so e.g. the "placement.duration.seconds" series becomes
// snooze_placement_duration_seconds.
func RenderPrometheus(snap apiv1.MetricsSnapshot) string {
	var b strings.Builder
	for _, name := range sortedNames(snap.Counters) {
		pn := promName(name) + "_total"
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}
	for _, name := range sortedNames(snap.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(snap.Gauges[name]))
	}
	for _, name := range sortedNames(snap.Histograms) {
		h := snap.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		// Prometheus buckets are cumulative; the snapshot's are per-bucket.
		var cum int64
		for i, bound := range h.Bounds {
			cum += h.Counts[i]
			fmt.Fprintf(&b, "%s_bucket{le=\"%s\"} %d\n", pn, formatFloat(bound), cum)
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count)
		fmt.Fprintf(&b, "%s_sum %s\n", pn, formatFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
	}
	return b.String()
}

// promName sanitizes a registry metric name into a Prometheus one under the
// snooze_ namespace.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("snooze_")
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func sortedNames[T any](m map[string]T) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
