package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	apiv1 "snooze/api/v1"
)

// TestTracesAndPrometheusEndToEnd drives a submission through the full
// client → server → simulated cluster path, then reads the decision trace
// back over /v1/traces and the latency histograms over /metrics.
func TestTracesAndPrometheusEndToEnd(t *testing.T) {
	f := newFixture(t)
	ctx := context.Background()

	spec := apiv1.VMSpec{ID: "traced-vm", Requested: apiv1.Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10}}
	result, err := f.cli.SubmitVMs(ctx, []apiv1.VMSpec{spec})
	if err != nil {
		t.Fatal(err)
	}
	if len(result.Placed) != 1 {
		t.Fatalf("submit: %+v", result)
	}

	// The VM's trace over the wire: dispatch root + placement child.
	list, err := f.cli.ListTraces(ctx, apiv1.TraceQuery{Entity: "vm/traced-vm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Items) < 2 {
		t.Fatalf("ListTraces: %d spans, want >= 2 (%+v)", len(list.Items), list)
	}
	var dispatch, placement *apiv1.TraceSpan
	for i := range list.Items {
		switch list.Items[i].Kind {
		case "dispatch":
			dispatch = &list.Items[i]
		case "placement":
			placement = &list.Items[i]
		}
	}
	if dispatch == nil || placement == nil {
		t.Fatalf("missing span kinds: %+v", list.Items)
	}
	if placement.TraceID != dispatch.TraceID || placement.Parent != dispatch.SpanID {
		t.Fatalf("broken parentage: dispatch=%+v placement=%+v", dispatch, placement)
	}

	// Filtering by trace ID and by kind narrows correctly.
	byID, err := f.cli.ListTraces(ctx, apiv1.TraceQuery{TraceID: dispatch.TraceID})
	if err != nil {
		t.Fatal(err)
	}
	if len(byID.Items) != len(list.Items) {
		t.Fatalf("ListTraces(traceId) = %d spans, want %d", len(byID.Items), len(list.Items))
	}
	byKind, err := f.cli.ListTraces(ctx, apiv1.TraceQuery{TraceID: dispatch.TraceID, Kind: "placement"})
	if err != nil {
		t.Fatal(err)
	}
	if len(byKind.Items) != 1 {
		t.Fatalf("ListTraces(kind=placement) = %d spans, want 1", len(byKind.Items))
	}

	// Pagination: limit=1 pages through the trace.
	page, err := f.cli.ListTraces(ctx, apiv1.TraceQuery{TraceID: dispatch.TraceID, Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Items) != 1 || page.Total != len(list.Items) || page.NextOffset != 1 {
		t.Fatalf("pagination: %+v", page)
	}

	// Prometheus exposition renders the span-duration histograms the Finish
	// path observed, with non-zero counts after the traffic above.
	srv := httptest.NewServer(New(f.backend).PrometheusHandler())
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE snooze_placement_duration_seconds histogram",
		"snooze_placement_duration_seconds_bucket{le=\"+Inf\"}",
		"snooze_placement_duration_seconds_count",
		"# TYPE snooze_gl_submissions_total counter",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q in:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "snooze_placement_duration_seconds_count ") {
			if strings.TrimPrefix(line, "snooze_placement_duration_seconds_count ") == "0" {
				t.Fatalf("placement histogram has zero count: %s", line)
			}
		}
	}
}
