package server

import (
	"bufio"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	apiv1 "snooze/api/v1"
	"snooze/internal/telemetry"
)

// watchBackend serves only the Watch route from a raw telemetry hub; every
// other Backend method panics via the embedded nil interface (they are not
// reached by these tests).
type watchBackend struct {
	apiv1.Backend
	hub *telemetry.Hub
}

func (b watchBackend) Watch(ctx context.Context, from uint64) (apiv1.EventStream, error) {
	return apiv1.WatchHub(ctx, b.hub, from), nil
}

func TestWatchHonorsLastEventID(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	for i := 0; i < 5; i++ {
		hub.Emit(telemetry.EventVMState, "vm/v", time.Duration(i)*time.Second, telemetry.Attrs{})
	}
	srv := httptest.NewServer(New(watchBackend{hub: hub}).Handler())
	defer srv.Close()

	// Last-Event-ID: 2 → resume at seq 3, exactly like ?from=3.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/watch", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %s", resp.Status)
	}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			if got := strings.TrimPrefix(line, "id: "); got != "3" {
				t.Fatalf("first replayed id = %s, want 3", got)
			}
			return
		}
	}
	t.Fatal("no event received")
}

func TestWatchExplicitFromBeatsLastEventID(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	for i := 0; i < 5; i++ {
		hub.Emit(telemetry.EventVMState, "vm/v", time.Duration(i)*time.Second, telemetry.Attrs{})
	}
	srv := httptest.NewServer(New(watchBackend{hub: hub}).Handler())
	defer srv.Close()

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/watch?from=5", nil)
	req.Header.Set("Last-Event-ID", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			if got := strings.TrimPrefix(line, "id: "); got != "5" {
				t.Fatalf("first replayed id = %s, want 5 (?from= must win)", got)
			}
			return
		}
	}
	t.Fatal("no event received")
}

func TestWatchRejectsBadLastEventID(t *testing.T) {
	hub := telemetry.NewHub(telemetry.Options{})
	srv := httptest.NewServer(New(watchBackend{hub: hub}).Handler())
	defer srv.Close()
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/watch", nil)
	req.Header.Set("Last-Event-ID", "not-a-number")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status: %s, want 400", resp.Status)
	}
}
