package client_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	apiclient "snooze/api/v1/client"
)

// choppyWatchServer serves /v1/watch from a fixed event list but cuts every
// connection after at most two events — the flaky-link stand-in. It records
// the effective resume cursor of each connection.
type choppyWatchServer struct {
	mu    sync.Mutex
	froms []uint64
	total uint64 // events available, seqs 1..total
}

func (s *choppyWatchServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/v1/watch" {
		http.NotFound(w, r)
		return
	}
	from := uint64(1)
	if v := r.URL.Query().Get("from"); v != "" {
		from, _ = strconv.ParseUint(v, 10, 64)
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, _ := strconv.ParseUint(v, 10, 64)
		from = n + 1
	}
	s.mu.Lock()
	s.froms = append(s.froms, from)
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/event-stream")
	w.WriteHeader(http.StatusOK)
	fl := w.(http.Flusher)
	sent := 0
	for seq := from; seq <= s.total && sent < 2; seq++ {
		fmt.Fprintf(w, "id: %d\nevent: vm.state\ndata: {\"seq\":%d,\"type\":\"vm.state\"}\n\n", seq, seq)
		fl.Flush()
		sent++
	}
	// Return: the connection closes mid-stream, as a flaky link would.
}

func TestWatchResumeReconnectsFromLastSeq(t *testing.T) {
	backend := &choppyWatchServer{total: 6}
	srv := httptest.NewServer(backend)
	defer srv.Close()

	cli := apiclient.New(srv.URL, apiclient.WithTimeout(5*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	stream := cli.WatchResume(ctx, 1)
	defer stream.Close()

	var seqs []uint64
	for ev := range stream.Events() {
		seqs = append(seqs, ev.Seq)
		if len(seqs) == 6 {
			break
		}
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("gapless delivery broken: %v", seqs)
		}
	}
	if len(seqs) != 6 {
		t.Fatalf("delivered %d events, want 6", len(seqs))
	}

	backend.mu.Lock()
	froms := append([]uint64(nil), backend.froms...)
	backend.mu.Unlock()
	// Three connections, each resumed at lastSeq+1: 1, 3, 5 (a trailing
	// reconnect may have started before Close).
	if len(froms) < 3 || froms[0] != 1 || froms[1] != 3 || froms[2] != 5 {
		t.Fatalf("resume cursors: %v, want prefix [1 3 5]", froms)
	}
}

func TestWatchResumeSurvivesServerOutage(t *testing.T) {
	backend := &choppyWatchServer{total: 2}
	var gate sync.Mutex
	down := true
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gate.Lock()
		unavailable := down
		gate.Unlock()
		if unavailable {
			http.Error(w, `{"error":{"code":"unavailable","message":"starting"}}`, http.StatusServiceUnavailable)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer srv.Close()

	cli := apiclient.New(srv.URL, apiclient.WithTimeout(5*time.Second))
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	stream := cli.WatchResume(ctx, 1)
	defer stream.Close()

	// While the server errors, the stream stays open and retries.
	time.Sleep(300 * time.Millisecond)
	if err := stream.Err(); err == nil {
		t.Fatal("expected a recorded connection error during the outage")
	}
	gate.Lock()
	down = false
	gate.Unlock()

	var seqs []uint64
	for ev := range stream.Events() {
		seqs = append(seqs, ev.Seq)
		if len(seqs) == 2 {
			break
		}
	}
	if len(seqs) != 2 || seqs[0] != 1 || seqs[1] != 2 {
		t.Fatalf("post-outage delivery: %v", seqs)
	}
	if err := stream.Err(); err != nil {
		t.Fatalf("error not cleared after successful delivery: %v", err)
	}
}

func TestWatchResumeEndsOnContextCancel(t *testing.T) {
	backend := &choppyWatchServer{total: 0} // nothing to deliver
	srv := httptest.NewServer(backend)
	defer srv.Close()
	cli := apiclient.New(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	stream := cli.WatchResume(ctx, 1)
	cancel()
	select {
	case _, open := <-stream.Events():
		if open {
			t.Fatal("event delivered after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not close after context cancel")
	}
}
