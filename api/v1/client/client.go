// Package client is the typed Go client for the api/v1 control plane — what
// snoozectl and programmatic operators use against any /v1 server, whether
// it fronts a simulated cluster or a live snoozed deployment. The client
// itself implements apiv1.Backend, so code written against the interface
// runs unchanged in-process or across the network.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	apiv1 "snooze/api/v1"
)

// Client calls a remote /v1 server.
type Client struct {
	base string
	http *http.Client
}

var _ apiv1.Backend = (*Client)(nil)

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying HTTP client.
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithTimeout sets the per-request timeout (default 2 minutes; submissions
// wait for placement to finish).
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.http = &http.Client{Timeout: d} }
}

// New creates a client for the server at baseURL (e.g.
// "http://localhost:7001").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 2 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do performs one request and decodes the response or the error envelope.
// dst may be nil for responses without a body (204).
func (c *Client) do(ctx context.Context, method, path string, query url.Values, in, dst any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	u := c.base + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, method, u, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 400 {
		return decodeError(resp)
	}
	if dst == nil || resp.StatusCode == http.StatusNoContent {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// decodeError rebuilds a typed error from the envelope, so errors.Is against
// the apiv1 sentinels works across the wire.
func decodeError(resp *http.Response) error {
	var envelope apiv1.ErrorBody
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	msg := strings.TrimSpace(string(data))
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Error.Message != "" {
		msg = envelope.Error.Message
	}
	var sentinel error
	switch envelope.Error.Code {
	case apiv1.CodeNotFound:
		sentinel = apiv1.ErrNotFound
	case apiv1.CodeInvalid:
		sentinel = apiv1.ErrInvalid
	case apiv1.CodeUnsupported:
		sentinel = apiv1.ErrUnsupported
	case apiv1.CodeUnavailable:
		sentinel = apiv1.ErrUnavailable
	default:
		switch resp.StatusCode {
		case http.StatusNotFound:
			sentinel = apiv1.ErrNotFound
		case http.StatusBadRequest:
			sentinel = apiv1.ErrInvalid
		case http.StatusNotImplemented:
			sentinel = apiv1.ErrUnsupported
		case http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			sentinel = apiv1.ErrUnavailable
		}
	}
	if sentinel != nil {
		return fmt.Errorf("%w: %s: %s", sentinel, resp.Status, msg)
	}
	return fmt.Errorf("apiv1: %s: %s", resp.Status, msg)
}

// ---------------------------------------------------------------------------
// Backend implementation
// ---------------------------------------------------------------------------

// SubmitVMs implements apiv1.Backend.
func (c *Client) SubmitVMs(ctx context.Context, specs []apiv1.VMSpec) (apiv1.SubmitResult, error) {
	var out apiv1.SubmitResult
	err := c.do(ctx, http.MethodPost, "/v1/vms", nil, apiv1.SubmitRequest{VMs: specs}, &out)
	return out, err
}

// ListVMsPage fetches one page of the VM collection (limit <= 0 = all).
func (c *Client) ListVMsPage(ctx context.Context, limit, offset int) (apiv1.VMList, error) {
	var out apiv1.VMList
	err := c.do(ctx, http.MethodGet, "/v1/vms", pageQuery(limit, offset), nil, &out)
	return out, err
}

// ListVMs implements apiv1.Backend, paging through the full collection.
func (c *Client) ListVMs(ctx context.Context) ([]apiv1.VM, error) {
	var all []apiv1.VM
	offset := 0
	for {
		page, err := c.ListVMsPage(ctx, 0, offset)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.NextOffset == 0 {
			return all, nil
		}
		offset = page.NextOffset
	}
}

// GetVM implements apiv1.Backend.
func (c *Client) GetVM(ctx context.Context, id string) (apiv1.VM, error) {
	var out apiv1.VM
	err := c.do(ctx, http.MethodGet, "/v1/vms/"+url.PathEscape(id), nil, nil, &out)
	return out, err
}

// ListNodesPage fetches one page of the node collection.
func (c *Client) ListNodesPage(ctx context.Context, limit, offset int) (apiv1.NodeList, error) {
	var out apiv1.NodeList
	err := c.do(ctx, http.MethodGet, "/v1/nodes", pageQuery(limit, offset), nil, &out)
	return out, err
}

// ListNodes implements apiv1.Backend.
func (c *Client) ListNodes(ctx context.Context) ([]apiv1.Node, error) {
	var all []apiv1.Node
	offset := 0
	for {
		page, err := c.ListNodesPage(ctx, 0, offset)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.NextOffset == 0 {
			return all, nil
		}
		offset = page.NextOffset
	}
}

// GetNode implements apiv1.Backend.
func (c *Client) GetNode(ctx context.Context, id string) (apiv1.Node, error) {
	var out apiv1.Node
	err := c.do(ctx, http.MethodGet, "/v1/nodes/"+url.PathEscape(id), nil, nil, &out)
	return out, err
}

// FailNode implements apiv1.Backend.
func (c *Client) FailNode(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodPost, "/v1/nodes/"+url.PathEscape(id)+"/fail", nil, nil, nil)
}

// Topology implements apiv1.Backend.
func (c *Client) Topology(ctx context.Context, deep bool) (apiv1.Topology, error) {
	var out apiv1.Topology
	q := url.Values{}
	if deep {
		q.Set("deep", "true")
	}
	err := c.do(ctx, http.MethodGet, "/v1/topology", q, nil, &out)
	return out, err
}

// Consolidate implements apiv1.Backend.
func (c *Client) Consolidate(ctx context.Context, req apiv1.ConsolidationRequest) (apiv1.ConsolidationPlan, error) {
	var out apiv1.ConsolidationPlan
	err := c.do(ctx, http.MethodPost, "/v1/consolidations", nil, req, &out)
	return out, err
}

// ConsolidationStatus implements apiv1.Backend.
func (c *Client) ConsolidationStatus(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	var out apiv1.ConsolidationStatusList
	err := c.do(ctx, http.MethodGet, "/v1/consolidations/status", nil, nil, &out)
	return out, err
}

// StartConsolidation implements apiv1.Backend.
func (c *Client) StartConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	var out apiv1.ConsolidationStatusList
	err := c.do(ctx, http.MethodPost, "/v1/consolidations/start", nil, nil, &out)
	return out, err
}

// StopConsolidation implements apiv1.Backend.
func (c *Client) StopConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	var out apiv1.ConsolidationStatusList
	err := c.do(ctx, http.MethodPost, "/v1/consolidations/stop", nil, nil, &out)
	return out, err
}

// Metrics implements apiv1.Backend.
func (c *Client) Metrics(ctx context.Context) (apiv1.MetricsSnapshot, error) {
	var out apiv1.MetricsSnapshot
	err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, nil, &out)
	return out, err
}

// ListSeriesPage fetches one page of the telemetry series key listing.
func (c *Client) ListSeriesPage(ctx context.Context, limit, offset int) (apiv1.SeriesList, error) {
	var out apiv1.SeriesList
	err := c.do(ctx, http.MethodGet, "/v1/series", pageQuery(limit, offset), nil, &out)
	return out, err
}

// ListSeries implements apiv1.Backend, paging through the key listing.
func (c *Client) ListSeries(ctx context.Context) ([]apiv1.SeriesKey, error) {
	var all []apiv1.SeriesKey
	offset := 0
	for {
		page, err := c.ListSeriesPage(ctx, 0, offset)
		if err != nil {
			return nil, err
		}
		all = append(all, page.Items...)
		if page.NextOffset == 0 {
			return all, nil
		}
		offset = page.NextOffset
	}
}

// QuerySeries implements apiv1.Backend.
func (c *Client) QuerySeries(ctx context.Context, q apiv1.SeriesQuery) (apiv1.SeriesData, error) {
	vals := pageQuery(q.Limit, q.Offset)
	vals.Set("entity", q.Entity)
	vals.Set("metric", q.Metric)
	if q.FromNs != 0 {
		vals.Set("fromNs", strconv.FormatInt(q.FromNs, 10))
	}
	if q.ToNs != 0 {
		vals.Set("toNs", strconv.FormatInt(q.ToNs, 10))
	}
	if q.Agg != "" {
		vals.Set("agg", q.Agg)
	}
	if q.StepNs != 0 {
		vals.Set("stepNs", strconv.FormatInt(q.StepNs, 10))
	}
	var out apiv1.SeriesData
	err := c.do(ctx, http.MethodGet, "/v1/series", vals, nil, &out)
	return out, err
}

// ListTraces implements apiv1.Backend.
func (c *Client) ListTraces(ctx context.Context, q apiv1.TraceQuery) (apiv1.TraceList, error) {
	vals := pageQuery(q.Limit, q.Offset)
	if q.TraceID != "" {
		vals.Set("traceId", q.TraceID)
	}
	if q.Entity != "" {
		vals.Set("entity", q.Entity)
	}
	if q.Kind != "" {
		vals.Set("kind", q.Kind)
	}
	var out apiv1.TraceList
	err := c.do(ctx, http.MethodGet, "/v1/traces", vals, nil, &out)
	return out, err
}

// Watch implements apiv1.Backend: it consumes the server's /v1/watch SSE
// stream, replaying retained events with seq >= from before following live.
// The stream is exempt from the client's per-request timeout; cancel ctx or
// Close it to stop. On ErrLagged-style terminal events, reconnect with
// from = last seen seq + 1.
func (c *Client) Watch(ctx context.Context, from uint64) (apiv1.EventStream, error) {
	u := c.base + "/v1/watch"
	if from > 0 {
		u += "?from=" + strconv.FormatUint(from, 10)
	}
	ctx, cancel := context.WithCancel(ctx)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Accept", "text/event-stream")
	// A watch outlives any sane request timeout: reuse the transport but not
	// the client-wide deadline. Lifetime is governed by ctx alone.
	hc := &http.Client{Transport: c.http.Transport, CheckRedirect: c.http.CheckRedirect, Jar: c.http.Jar}
	resp, err := hc.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	if resp.StatusCode >= 400 {
		defer resp.Body.Close()
		err := decodeError(resp)
		cancel()
		return nil, err
	}
	s := apiv1.NewStreamPipe(cancel)
	go func() {
		defer s.Finish()
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
		event, data := "", ""
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, "event: "):
				event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case line == "":
				if event == "error" {
					var msg string
					_ = json.Unmarshal([]byte(data), &msg)
					s.SetErr(fmt.Errorf("apiv1: watch terminated by server: %s", msg))
					return
				}
				if data != "" {
					var ev apiv1.Event
					if err := json.Unmarshal([]byte(data), &ev); err == nil {
						if !s.Send(ctx, ev) {
							return
						}
					}
				}
				event, data = "", ""
			}
		}
		if err := sc.Err(); err != nil && ctx.Err() == nil {
			s.SetErr(err)
		}
	}()
	return s, nil
}

// Reconnect backoff bounds for WatchResume.
const (
	watchBackoffMin = 100 * time.Millisecond
	watchBackoffMax = 5 * time.Second
)

// WatchResume is Watch with automatic reconnection: whenever the underlying
// SSE stream ends — a lagged-out subscription, a dropped connection, a
// server restart — it reconnects with from = last seen seq + 1 under bounded
// exponential backoff (100ms doubling to 5s, reset by the next delivered
// event), so consumers see a gapless sequence as long as the server's
// journal still retains the missed range. The stream ends only when ctx is
// cancelled or Close is called; Err reports the last connection error when
// the context ended mid-outage, nil after a clean Close.
func (c *Client) WatchResume(ctx context.Context, from uint64) apiv1.EventStream {
	ctx, cancel := context.WithCancel(ctx)
	s := apiv1.NewStreamPipe(cancel)
	go func() {
		defer s.Finish()
		next := from
		backoff := watchBackoffMin
		sleep := func() bool {
			t := time.NewTimer(backoff)
			defer t.Stop()
			if backoff *= 2; backoff > watchBackoffMax {
				backoff = watchBackoffMax
			}
			select {
			case <-t.C:
				return true
			case <-ctx.Done():
				return false
			}
		}
		for ctx.Err() == nil {
			inner, err := c.Watch(ctx, next)
			if err != nil {
				if ctx.Err() != nil {
					return
				}
				s.SetErr(err)
				if !sleep() {
					return
				}
				continue
			}
			for ev := range inner.Events() {
				if !s.Send(ctx, ev) {
					inner.Close()
					return
				}
				next = ev.Seq + 1
				backoff = watchBackoffMin
				s.SetErr(nil)
			}
			// Release the finished connection's context before reconnecting —
			// a long-lived resume must not accumulate one cancel registration
			// per outage.
			inner.Close()
			if ctx.Err() != nil {
				return
			}
			// Stream ended server-side (lag cut-off, shutdown, broken pipe):
			// remember why and reconnect from the next sequence number.
			s.SetErr(inner.Err())
			if !sleep() {
				return
			}
		}
	}()
	return s
}

// Experiment implements apiv1.Backend.
func (c *Client) Experiment(ctx context.Context, id string) (apiv1.Experiment, error) {
	var out apiv1.Experiment
	err := c.do(ctx, http.MethodGet, "/v1/experiments/"+url.PathEscape(id), nil, nil, &out)
	return out, err
}

// Healthz reports server liveness.
func (c *Client) Healthz(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/v1/healthz", nil, nil, &struct{}{})
}

func pageQuery(limit, offset int) url.Values {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if offset > 0 {
		q.Set("offset", strconv.Itoa(offset))
	}
	return q
}
