package simbackend

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	apiv1 "snooze/api/v1"
	"snooze/internal/cluster"
	"snooze/internal/telemetry"
	"snooze/internal/workload"
)

func newBackend(t *testing.T) *Backend {
	t.Helper()
	c := cluster.New(cluster.DefaultConfig(workload.Grid5000Topology(6, 2), 11))
	c.Settle(30 * time.Second)
	if c.Leader() == nil {
		t.Fatal("hierarchy did not form")
	}
	return New(c, 0)
}

func submit(t *testing.T, b *Backend, n int) apiv1.SubmitResult {
	t.Helper()
	specs := make([]apiv1.VMSpec, n)
	for i := range specs {
		specs[i] = apiv1.VMSpec{
			ID:        fmt.Sprintf("vm-%02d", i),
			Requested: apiv1.Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10},
		}
	}
	result, err := b.SubmitVMs(context.Background(), specs)
	if err != nil {
		t.Fatal(err)
	}
	return result
}

func TestSubmitListGet(t *testing.T) {
	b := newBackend(t)
	ctx := context.Background()
	result := submit(t, b, 5)
	if len(result.Placed) != 5 {
		t.Fatalf("placed: %+v", result)
	}

	vms, err := b.ListVMs(ctx)
	if err != nil || len(vms) != 5 {
		t.Fatalf("ListVMs: %d %v", len(vms), err)
	}
	for i := 1; i < len(vms); i++ {
		if vms[i-1].ID >= vms[i].ID {
			t.Fatalf("VMs not sorted: %s >= %s", vms[i-1].ID, vms[i].ID)
		}
	}
	vm, err := b.GetVM(ctx, "vm-03")
	if err != nil || vm.Node == "" {
		t.Fatalf("GetVM: %+v %v", vm, err)
	}
	if _, err := b.GetVM(ctx, "nope"); !errors.Is(err, apiv1.ErrNotFound) {
		t.Fatalf("GetVM unknown: %v", err)
	}

	nodes, err := b.ListNodes(ctx)
	if err != nil || len(nodes) != 6 {
		t.Fatalf("ListNodes: %d %v", len(nodes), err)
	}
	node, err := b.GetNode(ctx, vm.Node)
	if err != nil || node.Capacity.CPU == 0 {
		t.Fatalf("GetNode: %+v %v", node, err)
	}
	if _, err := b.GetNode(ctx, "nope"); !errors.Is(err, apiv1.ErrNotFound) {
		t.Fatalf("GetNode unknown: %v", err)
	}
}

func TestSubmitValidation(t *testing.T) {
	b := newBackend(t)
	ctx := context.Background()
	if _, err := b.SubmitVMs(ctx, nil); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("empty batch: %v", err)
	}
	dup := []apiv1.VMSpec{{ID: "a"}, {ID: "a"}}
	if _, err := b.SubmitVMs(ctx, dup); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("duplicate IDs: %v", err)
	}
}

func TestTopologyAndConsolidate(t *testing.T) {
	b := newBackend(t)
	ctx := context.Background()
	submit(t, b, 6)

	topo, err := b.Topology(ctx, true)
	if err != nil || topo.GL == "" {
		t.Fatalf("topology: %+v %v", topo, err)
	}
	lcs := 0
	for _, gm := range topo.GMs {
		lcs += len(gm.LCs)
	}
	if lcs != 6 {
		t.Fatalf("deep topology LCs: %d", lcs)
	}

	// Let VMs reach running, then plan (dry run: no cluster mutation).
	b.Cluster().Settle(30 * time.Second)
	plan, err := b.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: apiv1.AlgorithmFFD})
	if err != nil || plan.VMs != 6 {
		t.Fatalf("consolidate: %+v %v", plan, err)
	}
	if _, err := b.Consolidate(ctx, apiv1.ConsolidationRequest{Algorithm: "magic"}); !errors.Is(err, apiv1.ErrInvalid) {
		t.Fatalf("bad algorithm: %v", err)
	}
}

func TestFailNode(t *testing.T) {
	b := newBackend(t)
	ctx := context.Background()
	if err := b.FailNode(ctx, "nope"); !errors.Is(err, apiv1.ErrNotFound) {
		t.Fatalf("fail unknown: %v", err)
	}
	nodes, _ := b.ListNodes(ctx)
	if err := b.FailNode(ctx, nodes[0].ID); err != nil {
		t.Fatal(err)
	}
	b.Cluster().Settle(5 * time.Second)
	got, err := b.GetNode(ctx, nodes[0].ID)
	if err != nil || got.Power != "failed" {
		t.Fatalf("after fail: %+v %v", got, err)
	}
}

func TestMetricsAndTelemetry(t *testing.T) {
	b := newBackend(t)
	ctx := context.Background()
	submit(t, b, 3)
	b.Cluster().Settle(time.Minute)

	snap, err := b.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["gm.place-ok"] == 0 {
		t.Fatalf("counters: %+v", snap.Counters)
	}
	if snap.Gauges["telemetry.samples-total"] == 0 {
		t.Fatalf("telemetry gauges missing: %+v", snap.Gauges)
	}

	keys, err := b.ListSeries(ctx)
	if err != nil || len(keys) == 0 {
		t.Fatalf("ListSeries: %d %v", len(keys), err)
	}
	data, err := b.QuerySeries(ctx, apiv1.SeriesQuery{Entity: keys[0].Entity, Metric: keys[0].Metric})
	if err != nil || data.Total == 0 {
		t.Fatalf("QuerySeries: %+v %v", data, err)
	}

	// The watch replays placement events already journaled.
	stream, err := b.Watch(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	placed := 0
	timeout := time.After(5 * time.Second)
	for placed < 3 {
		select {
		case ev, ok := <-stream.Events():
			if !ok {
				t.Fatalf("watch ended: %v", stream.Err())
			}
			if ev.Type == "vm.state" && ev.Attrs["state"] == "placed" {
				placed++
			}
		case <-timeout:
			t.Fatalf("saw %d placements in replay", placed)
		}
	}
}

func TestContextCancellationUnblocksCaller(t *testing.T) {
	b := newBackend(t)
	// Occupy the op slot so the next caller must wait; its context deadline
	// has to unblock it with the context error.
	<-b.ops
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := b.ListVMs(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("blocked list: %v", err)
	}
	b.ops <- struct{}{}
	if _, err := b.ListVMs(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentRoute(t *testing.T) {
	b := newBackend(t)
	if _, err := b.Experiment(context.Background(), "nope"); !errors.Is(err, apiv1.ErrNotFound) {
		t.Fatalf("unknown experiment: %v", err)
	}
}

// TestSeriesRetentionMetadata pins the /v1/series retention contract: a tiny
// raw ring that a long simulation outlives must report its tier ladder, the
// retained range, and — for windows reaching before full-resolution
// coverage — the Truncated watermark.
func TestSeriesRetentionMetadata(t *testing.T) {
	cfg := cluster.DefaultConfig(workload.Grid5000Topology(3, 1), 11)
	cfg.Retention = telemetry.StoreConfig{SeriesCapacity: 32} // default tiers
	c := cluster.New(cfg)
	c.Settle(30 * time.Second)
	b := New(c, 0)
	ctx := context.Background()
	// 10 minutes of 3s monitoring = ~200 samples per node series: the
	// 32-sample raw ring wraps many times over.
	c.Settle(10 * time.Minute)

	keys, err := b.ListSeries(ctx)
	if err != nil || len(keys) == 0 {
		t.Fatalf("list: %v %v", keys, err)
	}
	entity := ""
	for _, k := range keys {
		if k.Metric == "util" {
			entity = k.Entity
			break
		}
	}
	full, err := b.QuerySeries(ctx, apiv1.SeriesQuery{Entity: entity, Metric: "util"})
	if err != nil {
		t.Fatal(err)
	}
	if !full.Truncated {
		t.Fatalf("unbounded window over a wrapped ring must be truncated: %+v", full)
	}
	if len(full.Tiers) != 2 || time.Duration(full.Tiers[0].StepNs) != time.Minute {
		t.Fatalf("tier ladder: %+v", full.Tiers)
	}
	if full.OldestNs >= full.RawFromNs || full.NewestNs <= full.RawFromNs {
		t.Fatalf("watermarks: oldest=%d rawFrom=%d newest=%d", full.OldestNs, full.RawFromNs, full.NewestNs)
	}
	// Tier buckets really serve the evicted history: points older than
	// RawFrom exist in the reply.
	if full.Total == 0 || full.Points[0].AtNs >= full.RawFromNs {
		t.Fatalf("no decimated history served: %+v", full.Points[:min(3, len(full.Points))])
	}
	// A window inside raw coverage is full fidelity.
	recent, err := b.QuerySeries(ctx, apiv1.SeriesQuery{Entity: entity, Metric: "util", FromNs: full.RawFromNs})
	if err != nil || recent.Truncated {
		t.Fatalf("raw-covered window flagged truncated: %+v %v", recent, err)
	}
}
