// Package simbackend adapts a simulated cluster (internal/cluster) to the
// api/v1 Backend interface, so the same /v1 routes, typed client and
// snoozectl commands work against the discrete-event simulation that a live
// snoozed deployment serves. Control-plane calls that need the hierarchy
// (submit, topology) drive the cluster's virtual clock forward until the
// hierarchy answers; reads (VM/node listings) snapshot simulator state
// directly.
package simbackend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	apiv1 "snooze/api/v1"
	"snooze/internal/cluster"
	"snooze/internal/consolidation/online"
	"snooze/internal/hierarchy"
	"snooze/internal/types"
)

// Backend serves the api/v1 control plane from a simulated cluster.
//
// The backend serializes operations: the simulation kernel is single-
// threaded, so concurrent HTTP requests take turns driving virtual time.
// While a Backend is serving, the cluster's kernel must not be driven by
// anyone else.
type Backend struct {
	c *cluster.Cluster
	// MaxSim bounds the virtual time one control-plane call may consume.
	maxSim time.Duration

	// ops serializes kernel access (a mutex in channel form so Submit can
	// hold it across the virtual-time pump without blocking forever on a
	// cancelled context).
	ops chan struct{}
}

// New wraps a simulated cluster. The cluster should already be settled
// (hierarchy formed); maxSim <= 0 defaults to one virtual hour per call.
func New(c *cluster.Cluster, maxSim time.Duration) *Backend {
	if maxSim <= 0 {
		maxSim = time.Hour
	}
	b := &Backend{c: c, maxSim: maxSim, ops: make(chan struct{}, 1)}
	b.ops <- struct{}{}
	return b
}

var _ apiv1.Backend = (*Backend)(nil)

// Cluster returns the wrapped cluster (test and experiment access).
func (b *Backend) Cluster() *cluster.Cluster { return b.c }

// lock acquires the operation slot, honouring context cancellation.
func (b *Backend) lock(ctx context.Context) error {
	select {
	case <-b.ops:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (b *Backend) unlock() { b.ops <- struct{}{} }

// mapClusterErr converts simulator errors into API sentinels.
func mapClusterErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, cluster.ErrTimeout), errors.Is(err, hierarchy.ErrNoGL):
		return fmt.Errorf("%w: %v", apiv1.ErrUnavailable, err)
	default:
		return err
	}
}

// SubmitVMs implements Backend: submit through the EP→GL path and pump
// virtual time until the placement outcome arrives.
func (b *Backend) SubmitVMs(ctx context.Context, specs []apiv1.VMSpec) (apiv1.SubmitResult, error) {
	if err := apiv1.ValidateSubmit(specs); err != nil {
		return apiv1.SubmitResult{}, err
	}
	if err := b.lock(ctx); err != nil {
		return apiv1.SubmitResult{}, err
	}
	defer b.unlock()
	resp, err := b.c.SubmitAndWait(apiv1.ToVMSpecs(specs), b.maxSim)
	if err != nil {
		return apiv1.SubmitResult{}, mapClusterErr(err)
	}
	return apiv1.FromSubmitResponse(resp), nil
}

// snapshotVMs lists VMs from simulator ground truth (node order, then VM ID).
func (b *Backend) snapshotVMs() []apiv1.VM {
	var out []apiv1.VM
	for _, id := range b.nodeIDs() {
		node := b.c.Nodes[types.NodeID(id)]
		for _, vm := range node.VMs() {
			out = append(out, apiv1.FromVMStatus(vm, node.ID()))
		}
	}
	apiv1.SortVMs(out)
	return out
}

func (b *Backend) nodeIDs() []string {
	ids := make([]string, 0, len(b.c.Nodes))
	for id := range b.c.Nodes {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// ListVMs implements Backend.
func (b *Backend) ListVMs(ctx context.Context) ([]apiv1.VM, error) {
	if err := b.lock(ctx); err != nil {
		return nil, err
	}
	defer b.unlock()
	return b.snapshotVMs(), nil
}

// GetVM implements Backend.
func (b *Backend) GetVM(ctx context.Context, id string) (apiv1.VM, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.VM{}, err
	}
	defer b.unlock()
	for _, vm := range b.snapshotVMs() {
		if vm.ID == id {
			return vm, nil
		}
	}
	return apiv1.VM{}, fmt.Errorf("%w: vm %q", apiv1.ErrNotFound, id)
}

// ListNodes implements Backend.
func (b *Backend) ListNodes(ctx context.Context) ([]apiv1.Node, error) {
	if err := b.lock(ctx); err != nil {
		return nil, err
	}
	defer b.unlock()
	return b.snapshotNodes(), nil
}

func (b *Backend) snapshotNodes() []apiv1.Node {
	out := make([]apiv1.Node, 0, len(b.c.Nodes))
	for _, id := range b.nodeIDs() {
		out = append(out, apiv1.FromNodeStatus(b.c.Nodes[types.NodeID(id)].Status()))
	}
	return out
}

// GetNode implements Backend.
func (b *Backend) GetNode(ctx context.Context, id string) (apiv1.Node, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.Node{}, err
	}
	defer b.unlock()
	node, ok := b.c.Nodes[types.NodeID(id)]
	if !ok {
		return apiv1.Node{}, fmt.Errorf("%w: node %q", apiv1.ErrNotFound, id)
	}
	return apiv1.FromNodeStatus(node.Status()), nil
}

// Topology implements Backend: ask the GL (driving virtual time) so the
// export reflects the hierarchy's own view, exactly as in deployment.
func (b *Backend) Topology(ctx context.Context, deep bool) (apiv1.Topology, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.Topology{}, err
	}
	defer b.unlock()
	fetch := b.c.TopologyAndWait
	if deep {
		fetch = b.c.TopologyDeepAndWait
	}
	resp, err := fetch(b.maxSim)
	if err != nil {
		return apiv1.Topology{}, mapClusterErr(err)
	}
	return apiv1.FromTopologyResponse(resp), nil
}

// Consolidate implements Backend over the simulator's ground-truth state.
// demand=p95 prices from the cluster's telemetry hub at the current virtual
// instant — the same series the GMs' online optimizers plan from.
func (b *Backend) Consolidate(ctx context.Context, req apiv1.ConsolidationRequest) (apiv1.ConsolidationPlan, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.ConsolidationPlan{}, err
	}
	defer b.unlock()
	demand := apiv1.P95Demand(b.c.Telemetry, b.c.Kernel.Now())
	return apiv1.PlanConsolidation(b.snapshotVMs(), b.snapshotNodes(), req, demand)
}

// consolidationCtl drives one control action against every GM of the
// simulated hierarchy directly (the managers run in-process).
func (b *Backend) consolidationCtl(ctx context.Context, call func(*hierarchy.Manager) (online.Status, bool)) (apiv1.ConsolidationStatusList, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.ConsolidationStatusList{}, err
	}
	defer b.unlock()
	var list apiv1.ConsolidationStatusList
	for _, mgr := range b.c.GroupManagers() {
		st, ok := call(mgr)
		if !ok {
			continue
		}
		list.Items = append(list.Items, consolidationStatusDTO(string(mgr.ID()), st))
	}
	sort.Slice(list.Items, func(i, j int) bool { return list.Items[i].GM < list.Items[j].GM })
	return list, nil
}

func consolidationStatusDTO(gm string, st online.Status) apiv1.ConsolidationStatus {
	out := apiv1.ConsolidationStatus{
		GM:         gm,
		Running:    st.Running,
		InRound:    st.InRound,
		Rounds:     st.Rounds,
		Migrations: st.Migrations,
		Cancels:    st.Cancels,
		Failures:   st.Failures,
		Budget:     st.Budget,
		PeriodNs:   int64(st.Period),
	}
	if lr := st.LastRound; lr != nil {
		out.LastRound = &apiv1.ConsolidationRound{
			Round:       lr.Round,
			AtNs:        int64(lr.At),
			HostsBefore: lr.HostsBefore,
			HostsAfter:  lr.HostsAfter,
			Planned:     lr.Planned,
			Executed:    lr.Executed,
			Failed:      lr.Failed,
			Cancelled:   lr.Cancelled,
		}
	}
	return out
}

// ConsolidationStatus implements Backend.
func (b *Backend) ConsolidationStatus(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, (*hierarchy.Manager).ConsolidationStatus)
}

// StartConsolidation implements Backend.
func (b *Backend) StartConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, (*hierarchy.Manager).StartConsolidation)
}

// StopConsolidation implements Backend.
func (b *Backend) StopConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, (*hierarchy.Manager).StopConsolidation)
}

// Metrics implements Backend from the cluster's shared registry.
func (b *Backend) Metrics(ctx context.Context) (apiv1.MetricsSnapshot, error) {
	if err := b.lock(ctx); err != nil {
		return apiv1.MetricsSnapshot{}, err
	}
	defer b.unlock()
	b.c.Telemetry.PublishGauges()
	return apiv1.FromRegistry(b.c.Metrics), nil
}

// ListSeries implements Backend over the cluster's telemetry hub. The hub is
// internally synchronized, so telemetry reads skip the kernel slot — a
// long-poll must never starve control-plane calls.
func (b *Backend) ListSeries(ctx context.Context) ([]apiv1.SeriesKey, error) {
	return apiv1.ListHubSeries(b.c.Telemetry), nil
}

// QuerySeries implements Backend.
func (b *Backend) QuerySeries(ctx context.Context, q apiv1.SeriesQuery) (apiv1.SeriesData, error) {
	return apiv1.QueryHubSeries(b.c.Telemetry, q)
}

// ListTraces implements Backend over the cluster's decision tracer. The
// trace store is internally sharded and lock-protected, so — like the
// telemetry reads above — this skips the kernel slot.
func (b *Backend) ListTraces(ctx context.Context, q apiv1.TraceQuery) (apiv1.TraceList, error) {
	return apiv1.QueryTraces(b.c.Tracer, q), nil
}

// Watch implements Backend. Events flow while virtual time advances — any
// concurrent control-plane call (or direct kernel driving by the test /
// example that owns the cluster) pumps the stream.
func (b *Backend) Watch(ctx context.Context, from uint64) (apiv1.EventStream, error) {
	return apiv1.WatchHub(ctx, b.c.Telemetry, from), nil
}

// FailNode implements Backend: crash-stop a simulated node (fault injection
// for availability scenarios).
func (b *Backend) FailNode(ctx context.Context, id string) error {
	if err := b.lock(ctx); err != nil {
		return err
	}
	defer b.unlock()
	if _, ok := b.c.Nodes[types.NodeID(id)]; !ok {
		return fmt.Errorf("%w: node %q", apiv1.ErrNotFound, id)
	}
	b.c.FailNode(types.NodeID(id))
	return nil
}

// Experiment implements Backend.
func (b *Backend) Experiment(ctx context.Context, id string) (apiv1.Experiment, error) {
	// Experiments build private clusters; no need to hold the kernel slot.
	return apiv1.RunExperiment(ctx, id)
}
