package apiv1

// Backend-neutral telemetry implementations: both in-process backends
// (simbackend, livebackend) reduce /v1/series and /v1/watch to the shared
// telemetry hub through the helpers here, so the wire semantics cannot drift
// between deployment flavours.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"snooze/internal/telemetry"
)

// FromTelemetryEvent converts a journal event to the wire form.
func FromTelemetryEvent(ev telemetry.Event) Event {
	return Event{Seq: ev.Seq, AtNs: int64(ev.At), Type: ev.Type, Entity: ev.Entity, Attrs: ev.Attrs.Map()}
}

// ListHubSeries implements Backend.ListSeries over a telemetry hub.
func ListHubSeries(h *telemetry.Hub) []SeriesKey {
	keys := h.Store().Keys()
	out := make([]SeriesKey, len(keys))
	for i, k := range keys {
		out[i] = SeriesKey{Entity: k.Entity, Metric: k.Metric}
	}
	return out
}

// QueryHubSeries implements Backend.QuerySeries over a telemetry hub.
func QueryHubSeries(h *telemetry.Hub, q SeriesQuery) (SeriesData, error) {
	if q.Entity == "" || q.Metric == "" {
		return SeriesData{}, fmt.Errorf("%w: series query needs entity and metric", ErrInvalid)
	}
	if q.FromNs < 0 || (q.ToNs > 0 && q.ToNs < q.FromNs) {
		return SeriesData{}, fmt.Errorf("%w: bad window [%d, %d]", ErrInvalid, q.FromNs, q.ToNs)
	}
	var agg telemetry.Agg
	if q.Agg != "" {
		var err error
		if agg, err = telemetry.ParseAgg(q.Agg); err != nil {
			return SeriesData{}, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if q.StepNs < 0 {
			return SeriesData{}, fmt.Errorf("%w: negative step", ErrInvalid)
		}
	} else if q.StepNs != 0 {
		return SeriesData{}, fmt.Errorf("%w: step needs an aggregation", ErrInvalid)
	}

	samples := h.Store().Query(q.Entity, q.Metric, time.Duration(q.FromNs), time.Duration(q.ToNs))
	if q.Agg != "" {
		samples = telemetry.Downsample(samples, time.Duration(q.StepNs), agg)
	}
	out := SeriesData{Entity: q.Entity, Metric: q.Metric, Agg: q.Agg, StepNs: q.StepNs, Total: len(samples)}
	if info, ok := h.Store().Info(q.Entity, q.Metric); ok {
		out.OldestNs = int64(info.OldestAt)
		out.NewestNs = int64(info.NewestAt)
		out.RawFromNs = int64(info.RawFrom)
		// The watermark is window-relative: this query is truncated when its
		// left edge precedes full-resolution coverage on a series that has
		// evicted raw samples (Summary.Truncated's rule).
		out.Truncated = info.Evicted > 0 && q.FromNs < int64(info.RawFrom)
		for _, t := range info.Tiers {
			out.Tiers = append(out.Tiers, SeriesTier{StepNs: int64(t.Step), Capacity: t.Capacity, Points: t.Points})
		}
	}
	lo, hi, next := Page(len(samples), q.Limit, q.Offset)
	out.NextOffset = next
	out.Points = make([]SeriesPoint, 0, hi-lo)
	for _, s := range samples[lo:hi] {
		out.Points = append(out.Points, SeriesPoint{AtNs: int64(s.At), Value: s.Value})
	}
	// The window's distribution, reduced through the store's quantile
	// sketches: count-weighted over decimated history, with the quantiles'
	// relative-error bound attached. The spec is per-call — SummarySpec
	// carries reusable scratch state and QueryHubSeries runs concurrently.
	spec := telemetry.SummarySpec{Percentiles: []float64{50, 95}}
	if sum, ok := h.Store().Reduce(q.Entity, q.Metric, time.Duration(q.FromNs), time.Duration(q.ToNs), &spec); ok {
		out.Summary = &SeriesWindowSummary{
			Count:         sum.Count,
			Weight:        sum.Weight,
			Min:           sum.Min,
			Max:           sum.Max,
			Avg:           sum.Avg,
			P50:           sum.Percentiles[0],
			P95:           sum.Percentiles[1],
			QuantileError: sum.QuantileError,
		}
	}
	return out, nil
}

// StreamPipe is the shared EventStream implementation behind every adapter —
// the hub subscription here, the client's SSE reader and its auto-reconnect
// wrapper: a delivery channel fed by one producer goroutine, a cancel hook
// ending the stream, and a guarded terminal error. Producers deliver with
// Send, record why the stream ended with SetErr, and call Finish exactly
// once when done.
type StreamPipe struct {
	ch     chan Event
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

// NewStreamPipe creates a pipe whose Close invokes cancel.
func NewStreamPipe(cancel context.CancelFunc) *StreamPipe {
	return &StreamPipe{ch: make(chan Event), cancel: cancel}
}

// Events implements EventStream.
func (p *StreamPipe) Events() <-chan Event { return p.ch }

// Err implements EventStream.
func (p *StreamPipe) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Close implements EventStream. Idempotent.
func (p *StreamPipe) Close() { p.cancel() }

// SetErr records the stream's terminal (or most recent transient) error;
// nil clears it.
func (p *StreamPipe) SetErr(err error) {
	p.mu.Lock()
	p.err = err
	p.mu.Unlock()
}

// Send delivers ev unless ctx ends first; it reports whether the event was
// delivered. Producer-side only.
func (p *StreamPipe) Send(ctx context.Context, ev Event) bool {
	select {
	case p.ch <- ev:
		return true
	case <-ctx.Done():
		return false
	}
}

// Finish closes the delivery channel. Producer-side, exactly once.
func (p *StreamPipe) Finish() { close(p.ch) }

// WatchHub implements Backend.Watch over a telemetry hub. The stream follows
// the journal until ctx ends, Close is called or the subscription lags out.
func WatchHub(ctx context.Context, h *telemetry.Hub, from uint64) EventStream {
	ctx, cancel := context.WithCancel(ctx)
	p := NewStreamPipe(cancel)
	sub := h.Journal().Subscribe(from, 0)
	go func() {
		defer p.Finish()
		defer sub.Close()
		for {
			select {
			case ev, ok := <-sub.Events():
				if !ok {
					p.SetErr(sub.Err())
					return
				}
				if !p.Send(ctx, FromTelemetryEvent(ev)) {
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return p
}
