package apiv1

// Backend-neutral telemetry implementations: both in-process backends
// (simbackend, livebackend) reduce /v1/series and /v1/watch to the shared
// telemetry hub through the helpers here, so the wire semantics cannot drift
// between deployment flavours.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"snooze/internal/telemetry"
)

// FromTelemetryEvent converts a journal event to the wire form.
func FromTelemetryEvent(ev telemetry.Event) Event {
	return Event{Seq: ev.Seq, AtNs: int64(ev.At), Type: ev.Type, Entity: ev.Entity, Attrs: ev.Attrs}
}

// ListHubSeries implements Backend.ListSeries over a telemetry hub.
func ListHubSeries(h *telemetry.Hub) []SeriesKey {
	keys := h.Store().Keys()
	out := make([]SeriesKey, len(keys))
	for i, k := range keys {
		out[i] = SeriesKey{Entity: k.Entity, Metric: k.Metric}
	}
	return out
}

// QueryHubSeries implements Backend.QuerySeries over a telemetry hub.
func QueryHubSeries(h *telemetry.Hub, q SeriesQuery) (SeriesData, error) {
	if q.Entity == "" || q.Metric == "" {
		return SeriesData{}, fmt.Errorf("%w: series query needs entity and metric", ErrInvalid)
	}
	if q.FromNs < 0 || (q.ToNs > 0 && q.ToNs < q.FromNs) {
		return SeriesData{}, fmt.Errorf("%w: bad window [%d, %d]", ErrInvalid, q.FromNs, q.ToNs)
	}
	var agg telemetry.Agg
	if q.Agg != "" {
		var err error
		if agg, err = telemetry.ParseAgg(q.Agg); err != nil {
			return SeriesData{}, fmt.Errorf("%w: %v", ErrInvalid, err)
		}
		if q.StepNs < 0 {
			return SeriesData{}, fmt.Errorf("%w: negative step", ErrInvalid)
		}
	} else if q.StepNs != 0 {
		return SeriesData{}, fmt.Errorf("%w: step needs an aggregation", ErrInvalid)
	}

	samples := h.Store().Query(q.Entity, q.Metric, time.Duration(q.FromNs), time.Duration(q.ToNs))
	if q.Agg != "" {
		samples = telemetry.Downsample(samples, time.Duration(q.StepNs), agg)
	}
	out := SeriesData{Entity: q.Entity, Metric: q.Metric, Agg: q.Agg, StepNs: q.StepNs, Total: len(samples)}
	lo, hi, next := Page(len(samples), q.Limit, q.Offset)
	out.NextOffset = next
	out.Points = make([]SeriesPoint, 0, hi-lo)
	for _, s := range samples[lo:hi] {
		out.Points = append(out.Points, SeriesPoint{AtNs: int64(s.At), Value: s.Value})
	}
	return out, nil
}

// hubStream adapts a journal subscription to the EventStream interface.
type hubStream struct {
	sub    *telemetry.Subscription
	ch     chan Event
	cancel context.CancelFunc

	mu  sync.Mutex
	err error
}

// WatchHub implements Backend.Watch over a telemetry hub. The stream follows
// the journal until ctx ends, Close is called or the subscription lags out.
func WatchHub(ctx context.Context, h *telemetry.Hub, from uint64) EventStream {
	ctx, cancel := context.WithCancel(ctx)
	s := &hubStream{sub: h.Journal().Subscribe(from, 0), ch: make(chan Event), cancel: cancel}
	go func() {
		defer close(s.ch)
		defer s.sub.Close()
		for {
			select {
			case ev, ok := <-s.sub.Events():
				if !ok {
					s.setErr(s.sub.Err())
					return
				}
				select {
				case s.ch <- FromTelemetryEvent(ev):
				case <-ctx.Done():
					return
				}
			case <-ctx.Done():
				return
			}
		}
	}()
	return s
}

func (s *hubStream) setErr(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Events implements EventStream.
func (s *hubStream) Events() <-chan Event { return s.ch }

// Err implements EventStream.
func (s *hubStream) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close implements EventStream.
func (s *hubStream) Close() { s.cancel() }
