package apiv1

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Backend is the control-plane surface every deployment flavour implements:
// the simulated cluster (api/v1/simbackend), a live snoozed hierarchy
// (api/v1/livebackend) and the HTTP client (api/v1/client), which makes any
// remote /v1 server usable wherever a Backend is expected.
type Backend interface {
	// SubmitVMs submits a VM batch to the hierarchy and reports per-VM
	// placement outcomes. Specs with empty or duplicate IDs are rejected
	// with ErrInvalid.
	SubmitVMs(ctx context.Context, specs []VMSpec) (SubmitResult, error)
	// ListVMs returns every VM known to the hierarchy, sorted by ID.
	ListVMs(ctx context.Context) ([]VM, error)
	// GetVM returns one VM or ErrNotFound.
	GetVM(ctx context.Context, id string) (VM, error)
	// ListNodes returns every node, sorted by ID.
	ListNodes(ctx context.Context) ([]Node, error)
	// GetNode returns one node or ErrNotFound.
	GetNode(ctx context.Context, id string) (Node, error)
	// Topology exports the GL/GM/LC hierarchy; deep includes per-LC detail.
	Topology(ctx context.Context, deep bool) (Topology, error)
	// Consolidate computes a dry-run consolidation plan over the currently
	// running VMs (Section III).
	Consolidate(ctx context.Context, req ConsolidationRequest) (ConsolidationPlan, error)
	// ConsolidationStatus reports the online consolidation optimizer's state
	// on every reachable GM, sorted by GM ID.
	ConsolidationStatus(ctx context.Context) (ConsolidationStatusList, error)
	// StartConsolidation starts the online optimizer on every reachable GM
	// (idempotent) and returns the resulting states.
	StartConsolidation(ctx context.Context) (ConsolidationStatusList, error)
	// StopConsolidation stops the online optimizer on every reachable GM,
	// abandoning any in-flight plan, and returns the resulting states.
	StopConsolidation(ctx context.Context) (ConsolidationStatusList, error)
	// Metrics snapshots control-plane counters, gauges and series.
	Metrics(ctx context.Context) (MetricsSnapshot, error)
	// ListTraces returns finished decision spans matching the query,
	// ordered by trace ID then start time. Backends without a tracer
	// return an empty list, not an error.
	ListTraces(ctx context.Context, q TraceQuery) (TraceList, error)
	// ListSeries lists the telemetry series keys, sorted by entity then
	// metric.
	ListSeries(ctx context.Context) ([]SeriesKey, error)
	// QuerySeries runs one windowed (optionally downsampled, paginated)
	// telemetry query. Missing entity/metric or a bad aggregation return
	// ErrInvalid; an unknown series returns an empty window, not an error
	// (series appear with monitoring flow and are dropped when their entity
	// leaves the deployment).
	QuerySeries(ctx context.Context, q SeriesQuery) (SeriesData, error)
	// Watch streams telemetry events, first replaying retained events with
	// Seq >= from, then following live. The stream ends when ctx is
	// cancelled, Close is called, or the consumer falls too far behind.
	Watch(ctx context.Context, from uint64) (EventStream, error)
	// FailNode crash-stops a node. Backends without fault injection (live
	// deployments) return ErrUnsupported.
	FailNode(ctx context.Context, id string) error
	// Experiment reproduces one table/figure of the paper's evaluation at
	// quick scale ("e1".."e8", "a1", "a2" or a name); unknown IDs return
	// ErrNotFound.
	Experiment(ctx context.Context, id string) (Experiment, error)
}

// EventStream is a live telemetry event feed returned by Backend.Watch.
type EventStream interface {
	// Events delivers events in sequence order; the channel closes when the
	// stream ends.
	Events() <-chan Event
	// Err reports why the channel closed: nil after Close or context end, a
	// descriptive error when the stream was cut (e.g. a lagging consumer or
	// a broken connection).
	Err() error
	// Close releases the stream's resources. Idempotent.
	Close()
}

// Sentinel errors shared by all backends. The HTTP layer maps them onto
// status codes and the client maps status codes back, so they survive the
// wire round trip.
var (
	// ErrNotFound means the referenced resource does not exist.
	ErrNotFound = errors.New("apiv1: not found")
	// ErrInvalid means the request is malformed.
	ErrInvalid = errors.New("apiv1: invalid argument")
	// ErrUnsupported means this backend cannot perform the operation.
	ErrUnsupported = errors.New("apiv1: unsupported operation")
	// ErrUnavailable means the hierarchy cannot serve now (e.g. no group
	// leader during an election); retrying later may succeed.
	ErrUnavailable = errors.New("apiv1: control plane unavailable")
)

// ValidateSubmit checks a submission batch before it reaches the hierarchy.
func ValidateSubmit(specs []VMSpec) error {
	if len(specs) == 0 {
		return fmt.Errorf("%w: empty VM batch", ErrInvalid)
	}
	seen := make(map[string]struct{}, len(specs))
	for _, s := range specs {
		if s.ID == "" {
			return fmt.Errorf("%w: VM with empty ID", ErrInvalid)
		}
		if _, dup := seen[s.ID]; dup {
			return fmt.Errorf("%w: duplicate VM ID %q", ErrInvalid, s.ID)
		}
		seen[s.ID] = struct{}{}
		if s.Requested.CPU < 0 || s.Requested.MemoryMB < 0 ||
			s.Requested.NetRxMbps < 0 || s.Requested.NetTxMbps < 0 {
			return fmt.Errorf("%w: VM %q requests negative resources", ErrInvalid, s.ID)
		}
	}
	return nil
}

// SortVMs orders VMs by ID (the canonical list order of the API).
func SortVMs(vms []VM) {
	sort.Slice(vms, func(i, j int) bool { return vms[i].ID < vms[j].ID })
}

// SortNodes orders nodes by ID.
func SortNodes(nodes []Node) {
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
}

// Page applies limit/offset pagination to a collection of n items and
// returns the slice bounds plus the next offset (0 when the page reaches the
// end). limit <= 0 means "no limit".
func Page(n, limit, offset int) (lo, hi, next int) {
	if offset < 0 {
		offset = 0
	}
	if offset > n {
		offset = n
	}
	lo, hi = offset, n
	if limit > 0 && lo+limit < n {
		hi = lo + limit
		next = hi
	}
	return lo, hi, next
}
