package livebackend

import (
	"context"
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	apiv1 "snooze/api/v1"
	apiclient "snooze/api/v1/client"
	apiserver "snooze/api/v1/server"
	"snooze/internal/coord"
	"snooze/internal/hierarchy"
	"snooze/internal/hypervisor"
	"snooze/internal/metrics"
	"snooze/internal/simkernel"
	"snooze/internal/transport"
	"snooze/internal/types"
)

// TestLiveHierarchyServesV1 boots a miniature wall-clock deployment — the
// cmd/snoozed control wiring in miniature, with the node co-hosted on the
// same bus — and exercises the /v1 routes through the HTTP server and typed
// client: the same contract the simulated backend serves.
func TestLiveHierarchyServesV1(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock test")
	}
	rt := simkernel.NewWallRuntime()
	bus := transport.NewBus(rt, transport.Config{})
	svc := coord.NewService(rt)
	reg := metrics.NewRegistry()

	mcfg := hierarchy.DefaultManagerConfig("gm-00", "mgr:gm-00")
	mcfg.HeartbeatPeriod = 200 * time.Millisecond
	mcfg.SummaryPeriod = 300 * time.Millisecond
	mcfg.SessionTTL = 2 * time.Second
	mcfg.LCTimeout = 5 * time.Second
	mcfg.Metrics = reg
	m0 := hierarchy.NewManager(rt, bus, svc, mcfg)
	mcfg1 := mcfg
	mcfg1.ID, mcfg1.Addr = "gm-01", "mgr:gm-01"
	m1 := hierarchy.NewManager(rt, bus, svc, mcfg1)
	if err := m0.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if err := m1.Start(); err != nil {
		t.Fatal(err)
	}
	defer m0.Stop()
	defer m1.Stop()
	ep := hierarchy.NewEP(rt, bus, "ep:0", 5*time.Second)
	ep.Start()
	defer ep.Stop()

	node := hypervisor.NewNode(rt, types.NodeSpec{ID: "n1", Capacity: types.RV(8, 16384, 1000, 1000)}, hypervisor.DefaultConfig())
	lcCfg := hierarchy.DefaultLCConfig()
	lcCfg.MonitorPeriod = 300 * time.Millisecond
	lcCfg.GMTimeout = 5 * time.Second
	lc := hierarchy.NewLC(rt, bus, node, "lc:n1", func(types.NodeID) (*hypervisor.Node, bool) { return nil, false }, lcCfg)
	lc.Start()
	defer lc.Stop()

	backend := New(Config{Bus: bus, EPs: []transport.Address{"ep:0"}, Metrics: reg, CallTimeout: 10 * time.Second})
	srv := httptest.NewServer(apiserver.New(backend).Handler())
	defer srv.Close()
	cli := apiclient.New(srv.URL)
	ctx := context.Background()

	// Wait for the hierarchy to form: the LC joins a GM and the GM's
	// summary reaches the GL.
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if lc.GM() != "" {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if lc.GM() == "" {
		t.Fatal("LC never joined a GM")
	}
	time.Sleep(time.Second)

	topo, err := cli.Topology(ctx, true)
	if err != nil {
		t.Fatal(err)
	}
	if topo.GL == "" || len(topo.GMs) == 0 {
		t.Fatalf("topology over /v1: %+v", topo)
	}

	result, err := cli.SubmitVMs(ctx, []apiv1.VMSpec{{
		ID:        "vm-live",
		Requested: apiv1.Resources{CPU: 2, MemoryMB: 2048, NetRxMbps: 10, NetTxMbps: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if result.Placed["vm-live"] != "n1" {
		t.Fatalf("submit over /v1: %+v", result)
	}
	if !node.HasVM("vm-live") {
		t.Fatal("VM not on the node after placement")
	}

	// The GM learns the VM from the next monitor report; the listing routes
	// aggregate GM inventories.
	deadline = time.Now().Add(10 * time.Second)
	var vm apiv1.VM
	for time.Now().Before(deadline) {
		vm, err = cli.GetVM(ctx, "vm-live")
		if err == nil {
			break
		}
		if !errors.Is(err, apiv1.ErrNotFound) {
			t.Fatal(err)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("vm-live never appeared in the inventory: %v", err)
	}
	if vm.Node != "n1" {
		t.Fatalf("GetVM: %+v", vm)
	}
	nodes, err := cli.ListNodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 1 || nodes[0].ID != "n1" {
		t.Fatalf("ListNodes: %+v", nodes)
	}

	// Live deployments have no fault injector: typed 501 across the wire.
	if err := cli.FailNode(ctx, "n1"); !errors.Is(err, apiv1.ErrUnsupported) {
		t.Fatalf("FailNode on live backend: %v", err)
	}

	snap, err := cli.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters["gl.submissions"] == 0 {
		t.Fatalf("metrics over /v1 missing gl.submissions: %+v", snap.Counters)
	}
}
