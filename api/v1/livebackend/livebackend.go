// Package livebackend adapts a live, wall-clock Snooze hierarchy to the
// api/v1 Backend interface. It speaks the same control-plane protocol the
// hierarchy components use among themselves — GL discovery through the entry
// points, submission and topology export against the GL, inventory fan-out
// to the GMs — over the process-local bus, so a snoozed control process can
// serve /v1 next to its /deliver RPC tunnel. Remote components reached
// through a rest.Gateway are transparently included: their bus addresses
// proxy over HTTP.
//
// The backend requires a wall-clock runtime (simkernel.NewWallRuntime):
// calls block the requesting goroutine until the bus responds. Simulated
// clusters use api/v1/simbackend instead, which drives the virtual clock.
package livebackend

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	apiv1 "snooze/api/v1"
	"snooze/internal/metrics"
	"snooze/internal/obs"
	"snooze/internal/protocol"
	"snooze/internal/telemetry"
	"snooze/internal/transport"
)

// Config parameterizes a live backend.
type Config struct {
	// Bus is the process-local message fabric (with gateway-registered
	// peers for remote components).
	Bus *transport.Bus
	// Addr is the bus address the backend answers from (default "api:0").
	Addr transport.Address
	// EPs are the entry points probed for GL discovery (default ["ep:0"]).
	EPs []transport.Address
	// CallTimeout bounds each control-plane call (default 30s).
	CallTimeout time.Duration
	// Metrics is the process registry served by GET /v1/metrics (may be
	// nil: the snapshot is then empty).
	Metrics *metrics.Registry
	// Telemetry is the process-wide telemetry hub — pass the hub the manager
	// processes feed (cmd/snoozed wires this) so /v1/series and /v1/watch
	// see the hierarchy's monitoring flow. Nil creates an empty private hub:
	// the routes work but stay silent.
	Telemetry *telemetry.Hub
	// Now reports the runtime-relative clock telemetry samples are stamped
	// with — pass the hierarchy runtime's Now (cmd/snoozed wires this) so
	// demand=p95 consolidation dry runs window the hub correctly. Nil falls
	// back to this backend's own uptime.
	Now func() time.Duration
	// Tracer is the process-wide decision tracer served by GET /v1/traces —
	// pass the tracer the manager processes record into (cmd/snoozed wires
	// this). Nil keeps the route working with an empty list.
	Tracer *obs.Tracer
}

// Backend serves the api/v1 control plane from a live hierarchy.
type Backend struct {
	cfg Config
}

var _ apiv1.Backend = (*Backend)(nil)

// New creates the backend and registers its address on the bus.
func New(cfg Config) *Backend {
	if cfg.Addr == "" {
		cfg.Addr = "api:0"
	}
	if len(cfg.EPs) == 0 {
		cfg.EPs = []transport.Address{"ep:0"}
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = 30 * time.Second
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewHub(telemetry.Options{Metrics: cfg.Metrics})
	}
	if cfg.Now == nil {
		start := time.Now()
		cfg.Now = func() time.Duration { return time.Since(start) }
	}
	b := &Backend{cfg: cfg}
	cfg.Bus.Register(cfg.Addr, func(req *transport.Request) {
		req.RespondErr(errors.New("livebackend: unexpected inbound message"))
	})
	return b
}

// call performs one request/response over the bus, honouring ctx.
func (b *Backend) call(ctx context.Context, to transport.Address, kind string, payload any) (any, error) {
	type outcome struct {
		reply any
		err   error
	}
	ch := make(chan outcome, 1)
	b.cfg.Bus.Call(b.cfg.Addr, to, kind, payload, b.cfg.CallTimeout, func(reply any, err error) {
		ch <- outcome{reply, err}
	})
	select {
	case out := <-ch:
		return out.reply, mapBusErr(out.err)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// mapBusErr converts transport failures into API sentinels: an unreachable
// or silent component is a control-plane availability problem, not an
// internal server fault.
func mapBusErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, transport.ErrUnreachable) || errors.Is(err, transport.ErrTimeout) {
		return fmt.Errorf("%w: %v", apiv1.ErrUnavailable, err)
	}
	return err
}

// discoverGL probes the entry points in order until one knows a live GL.
func (b *Backend) discoverGL(ctx context.Context) (transport.Address, error) {
	var lastErr error
	for _, ep := range b.cfg.EPs {
		reply, err := b.call(ctx, ep, protocol.KindGLQuery, struct{}{})
		if err != nil {
			lastErr = err
			continue
		}
		if r, ok := reply.(protocol.GLQueryResponse); ok && r.Known {
			return transport.Address(r.Addr), nil
		}
	}
	if lastErr != nil {
		return "", lastErr
	}
	return "", fmt.Errorf("%w: no group leader known to any entry point", apiv1.ErrUnavailable)
}

// SubmitVMs implements Backend via the EP→GL submission path.
func (b *Backend) SubmitVMs(ctx context.Context, specs []apiv1.VMSpec) (apiv1.SubmitResult, error) {
	if err := apiv1.ValidateSubmit(specs); err != nil {
		return apiv1.SubmitResult{}, err
	}
	gl, err := b.discoverGL(ctx)
	if err != nil {
		return apiv1.SubmitResult{}, err
	}
	reply, err := b.call(ctx, gl, protocol.KindSubmit, protocol.SubmitRequest{VMs: apiv1.ToVMSpecs(specs)})
	if err != nil {
		return apiv1.SubmitResult{}, err
	}
	resp, ok := reply.(protocol.SubmitResponse)
	if !ok {
		return apiv1.SubmitResult{}, fmt.Errorf("livebackend: bad submit response %T", reply)
	}
	return apiv1.FromSubmitResponse(resp), nil
}

// Topology implements Backend against the GL.
func (b *Backend) Topology(ctx context.Context, deep bool) (apiv1.Topology, error) {
	resp, err := b.topology(ctx, deep)
	if err != nil {
		return apiv1.Topology{}, err
	}
	return apiv1.FromTopologyResponse(resp), nil
}

func (b *Backend) topology(ctx context.Context, deep bool) (protocol.TopologyResponse, error) {
	gl, err := b.discoverGL(ctx)
	if err != nil {
		return protocol.TopologyResponse{}, err
	}
	reply, err := b.call(ctx, gl, protocol.KindTopology, protocol.TopologyRequest{Deep: deep})
	if err != nil {
		return protocol.TopologyResponse{}, err
	}
	resp, ok := reply.(protocol.TopologyResponse)
	if !ok {
		return protocol.TopologyResponse{}, fmt.Errorf("livebackend: bad topology response %T", reply)
	}
	return resp, nil
}

// inventory aggregates every GM's LC/VM inventory. GMs that fail mid-listing
// are skipped: a partial listing mirrors what the GL itself knows during a
// membership change. When two GMs claim the same LC (one record is stale
// after a rejoin), the claim with the freshest monitor report wins — its
// node status and VM set are the ones listed.
func (b *Backend) inventory(ctx context.Context) ([]apiv1.Node, []apiv1.VM, error) {
	topo, err := b.topology(ctx, false)
	if err != nil {
		return nil, nil, err
	}
	type claim struct {
		node apiv1.Node
		age  int64
		vms  []apiv1.VM
	}
	best := make(map[string]claim)
	for _, gm := range topo.GMs {
		reply, err := b.call(ctx, transport.Address(gm.Addr), protocol.KindInventory, struct{}{})
		if err != nil {
			if ctx.Err() != nil {
				return nil, nil, ctx.Err()
			}
			continue
		}
		inv, ok := reply.(protocol.InventoryResponse)
		if !ok {
			continue
		}
		vmsByNode := make(map[string][]apiv1.VM)
		for _, vm := range inv.VMs {
			dto := apiv1.FromVMStatus(vm, vm.Node)
			vmsByNode[dto.Node] = append(vmsByNode[dto.Node], dto)
		}
		for _, n := range inv.Nodes {
			c := claim{node: apiv1.FromNodeStatus(n.Status), age: n.AgeNs}
			c.vms = vmsByNode[c.node.ID]
			if cur, seen := best[c.node.ID]; !seen || c.age < cur.age {
				best[c.node.ID] = c
			}
		}
	}
	var nodes []apiv1.Node
	var vms []apiv1.VM
	for _, c := range best {
		nodes = append(nodes, c.node)
		vms = append(vms, c.vms...)
	}
	apiv1.SortNodes(nodes)
	apiv1.SortVMs(vms)
	return nodes, vms, nil
}

// ListVMs implements Backend.
func (b *Backend) ListVMs(ctx context.Context) ([]apiv1.VM, error) {
	_, vms, err := b.inventory(ctx)
	return vms, err
}

// GetVM implements Backend.
func (b *Backend) GetVM(ctx context.Context, id string) (apiv1.VM, error) {
	_, vms, err := b.inventory(ctx)
	if err != nil {
		return apiv1.VM{}, err
	}
	for _, vm := range vms {
		if vm.ID == id {
			return vm, nil
		}
	}
	return apiv1.VM{}, fmt.Errorf("%w: vm %q", apiv1.ErrNotFound, id)
}

// ListNodes implements Backend.
func (b *Backend) ListNodes(ctx context.Context) ([]apiv1.Node, error) {
	nodes, _, err := b.inventory(ctx)
	return nodes, err
}

// GetNode implements Backend.
func (b *Backend) GetNode(ctx context.Context, id string) (apiv1.Node, error) {
	nodes, _, err := b.inventory(ctx)
	if err != nil {
		return apiv1.Node{}, err
	}
	for _, n := range nodes {
		if n.ID == id {
			return n, nil
		}
	}
	return apiv1.Node{}, fmt.Errorf("%w: node %q", apiv1.ErrNotFound, id)
}

// Consolidate implements Backend over the GM-reported state. demand=p95
// prices from the process telemetry hub at the runtime's current instant.
func (b *Backend) Consolidate(ctx context.Context, req apiv1.ConsolidationRequest) (apiv1.ConsolidationPlan, error) {
	nodes, vms, err := b.inventory(ctx)
	if err != nil {
		return apiv1.ConsolidationPlan{}, err
	}
	demand := apiv1.P95Demand(b.cfg.Telemetry, b.cfg.Now())
	return apiv1.PlanConsolidation(vms, nodes, req, demand)
}

// consolidationCtl fans one online-optimizer control action out to every GM
// in the topology. GMs that fail mid-call are skipped, mirroring inventory:
// a partial listing is what the hierarchy itself would report during a
// membership change.
func (b *Backend) consolidationCtl(ctx context.Context, action string) (apiv1.ConsolidationStatusList, error) {
	topo, err := b.topology(ctx, false)
	if err != nil {
		return apiv1.ConsolidationStatusList{}, err
	}
	var list apiv1.ConsolidationStatusList
	seen := make(map[string]bool)
	for _, gm := range topo.GMs {
		reply, err := b.call(ctx, transport.Address(gm.Addr), protocol.KindConsolidation,
			protocol.ConsolidationCtlRequest{Action: action})
		if err != nil {
			if ctx.Err() != nil {
				return apiv1.ConsolidationStatusList{}, ctx.Err()
			}
			continue
		}
		resp, ok := reply.(protocol.ConsolidationCtlResponse)
		if !ok || seen[string(resp.GM)] {
			continue
		}
		seen[string(resp.GM)] = true
		list.Items = append(list.Items, apiv1.FromConsolidationCtl(resp))
	}
	sort.Slice(list.Items, func(i, j int) bool { return list.Items[i].GM < list.Items[j].GM })
	return list, nil
}

// ConsolidationStatus implements Backend.
func (b *Backend) ConsolidationStatus(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, protocol.ConsolidationStatus)
}

// StartConsolidation implements Backend.
func (b *Backend) StartConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, protocol.ConsolidationStart)
}

// StopConsolidation implements Backend.
func (b *Backend) StopConsolidation(ctx context.Context) (apiv1.ConsolidationStatusList, error) {
	return b.consolidationCtl(ctx, protocol.ConsolidationStop)
}

// Metrics implements Backend from the process registry.
func (b *Backend) Metrics(ctx context.Context) (apiv1.MetricsSnapshot, error) {
	b.cfg.Telemetry.PublishGauges()
	return apiv1.FromRegistry(b.cfg.Metrics), nil
}

// ListSeries implements Backend over the process telemetry hub.
func (b *Backend) ListSeries(ctx context.Context) ([]apiv1.SeriesKey, error) {
	return apiv1.ListHubSeries(b.cfg.Telemetry), nil
}

// QuerySeries implements Backend.
func (b *Backend) QuerySeries(ctx context.Context, q apiv1.SeriesQuery) (apiv1.SeriesData, error) {
	return apiv1.QueryHubSeries(b.cfg.Telemetry, q)
}

// ListTraces implements Backend over the process decision tracer.
func (b *Backend) ListTraces(ctx context.Context, q apiv1.TraceQuery) (apiv1.TraceList, error) {
	return apiv1.QueryTraces(b.cfg.Tracer, q), nil
}

// Watch implements Backend over the process telemetry hub.
func (b *Backend) Watch(ctx context.Context, from uint64) (apiv1.EventStream, error) {
	return apiv1.WatchHub(ctx, b.cfg.Telemetry, from), nil
}

// FailNode implements Backend: live deployments have no fault injector.
func (b *Backend) FailNode(ctx context.Context, id string) error {
	return fmt.Errorf("%w: fault injection requires a simulated backend", apiv1.ErrUnsupported)
}

// Experiment implements Backend (experiments run self-contained simulated
// clusters, so a live deployment can still reproduce the paper's tables).
func (b *Backend) Experiment(ctx context.Context, id string) (apiv1.Experiment, error) {
	return apiv1.RunExperiment(ctx, id)
}
