package apiv1

import (
	"context"
	"errors"
	"testing"
	"time"

	"snooze/internal/metrics"
	"snooze/internal/protocol"
	"snooze/internal/telemetry"
	"snooze/internal/types"
)

func TestResourceVectorRoundTrip(t *testing.T) {
	rv := types.RV(2.5, 4096, 100, 50)
	got := ToResourceVector(FromResourceVector(rv))
	if got != rv {
		t.Fatalf("round trip: %+v != %+v", got, rv)
	}
}

func TestVMSpecRoundTrip(t *testing.T) {
	spec := VMSpec{ID: "vm-1", Requested: Resources{CPU: 2, MemoryMB: 2048}, TraceID: "bursty"}
	internal := ToVMSpec(spec)
	if internal.ID != "vm-1" || internal.Requested.Memory != 2048 || internal.TraceID != "bursty" {
		t.Fatalf("ToVMSpec: %+v", internal)
	}
	batch := ToVMSpecs([]VMSpec{spec, {ID: "vm-2"}})
	if len(batch) != 2 || batch[1].ID != "vm-2" {
		t.Fatalf("ToVMSpecs: %+v", batch)
	}
}

func TestFromVMStatusNodeOverride(t *testing.T) {
	st := types.VMStatus{
		Spec:  types.VMSpec{ID: "v", Requested: types.RV(1, 1024, 10, 10)},
		State: types.VMRunning,
		Node:  "from-status",
		Used:  types.RV(0.5, 512, 1, 1),
	}
	if vm := FromVMStatus(st, "override"); vm.Node != "override" {
		t.Fatalf("explicit node ignored: %+v", vm)
	}
	vm := FromVMStatus(st, "")
	if vm.Node != "from-status" || vm.State != "running" || vm.Used.CPU != 0.5 {
		t.Fatalf("status node fallback: %+v", vm)
	}
}

func TestFromNodeStatus(t *testing.T) {
	st := types.NodeStatus{
		Spec:     types.NodeSpec{ID: "n1", Capacity: types.RV(8, 32768, 1000, 1000)},
		Power:    types.PowerSuspended,
		Reserved: types.RV(2, 2048, 20, 20),
		VMs:      []types.VMID{"a", "b"},
		Idle:     false,
	}
	n := FromNodeStatus(st)
	if n.ID != "n1" || n.Power != "suspended" || len(n.VMs) != 2 || n.Capacity.CPU != 8 {
		t.Fatalf("FromNodeStatus: %+v", n)
	}
}

func TestFromSubmitResponse(t *testing.T) {
	resp := protocol.SubmitResponse{
		Placed:   map[types.VMID]types.NodeID{"a": "n1"},
		Unplaced: []types.VMID{"b"},
	}
	out := FromSubmitResponse(resp)
	if out.Placed["a"] != "n1" || len(out.Unplaced) != 1 || out.Unplaced[0] != "b" {
		t.Fatalf("FromSubmitResponse: %+v", out)
	}
}

func TestFromTopologyResponse(t *testing.T) {
	resp := protocol.TopologyResponse{
		GL: "mgr:gm-00",
		GMs: []protocol.TopologyGM{{
			GM:      "gm-01",
			Addr:    "mgr:gm-01",
			Summary: types.GroupSummary{GM: "gm-01", Total: types.RV(16, 65536, 2000, 2000), ActiveLCs: 2, VMs: 3},
			LCs:     []protocol.TopologyLC{{ID: "n1", Power: "on", VMs: 3, Capacity: types.RV(8, 32768, 1000, 1000)}},
		}},
	}
	topo := FromTopologyResponse(resp)
	if topo.GL != "mgr:gm-00" || len(topo.GMs) != 1 {
		t.Fatalf("FromTopologyResponse: %+v", topo)
	}
	gm := topo.GMs[0]
	if gm.Summary.ActiveLCs != 2 || gm.Summary.VMs != 3 || len(gm.LCs) != 1 || gm.LCs[0].Capacity.CPU != 8 {
		t.Fatalf("GM conversion: %+v", gm)
	}
}

func TestFromRegistry(t *testing.T) {
	if snap := FromRegistry(nil); snap.Counters != nil || snap.Series != nil || snap.Gauges != nil {
		t.Fatalf("nil registry: %+v", snap)
	}
	r := metrics.NewRegistry()
	r.Inc("c", 3)
	r.SetGauge("g", 1.5)
	for i := 0; i < 10; i++ {
		r.Observe("s", float64(i))
	}
	snap := FromRegistry(r)
	if snap.Counters["c"] != 3 || snap.Gauges["g"] != 1.5 {
		t.Fatalf("counters/gauges: %+v", snap)
	}
	if s := snap.Series["s"]; s.N != 10 || s.Min != 0 || s.Max != 9 {
		t.Fatalf("series summary: %+v", snap.Series)
	}
}

func TestPlanConsolidation(t *testing.T) {
	nodes := []Node{
		{ID: "n1", Power: "on", Capacity: Resources{CPU: 8, MemoryMB: 32768, NetRxMbps: 1000, NetTxMbps: 1000}},
		{ID: "n2", Power: "on", Capacity: Resources{CPU: 8, MemoryMB: 32768, NetRxMbps: 1000, NetTxMbps: 1000}},
		{ID: "n3", Power: "suspended", Capacity: Resources{CPU: 8, MemoryMB: 32768, NetRxMbps: 1000, NetTxMbps: 1000}},
	}
	vms := []VM{
		{ID: "a", State: "running", Node: "n1", Requested: Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10}},
		{ID: "b", State: "running", Node: "n2", Requested: Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10}},
		{ID: "c", State: "pending", Node: "n1", Requested: Resources{CPU: 1, MemoryMB: 1024, NetRxMbps: 10, NetTxMbps: 10}},
	}
	plan, err := PlanConsolidation(vms, nodes, ConsolidationRequest{Algorithm: AlgorithmFFD}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pending VM and suspended host are excluded; the 2 running VMs fit one
	// host.
	if plan.VMs != 2 || plan.HostsTotal != 2 || plan.HostsBefore != 2 || plan.HostsAfter != 1 {
		t.Fatalf("plan: %+v", plan)
	}
	if len(plan.Migrations) != 1 {
		t.Fatalf("migrations: %+v", plan.Migrations)
	}
	if _, err := PlanConsolidation(vms, nodes, ConsolidationRequest{Algorithm: "magic"}, nil); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown algorithm: %v", err)
	}
	// Default algorithm is ACO; empty inputs plan nothing without error.
	empty, err := PlanConsolidation(nil, nodes, ConsolidationRequest{}, nil)
	if err != nil || empty.Algorithm != AlgorithmACO || empty.VMs != 0 {
		t.Fatalf("empty plan: %+v %v", empty, err)
	}
}

func TestPlanConsolidationDemandModes(t *testing.T) {
	nodes := []Node{
		{ID: "n1", Power: "on", Capacity: Resources{CPU: 8, MemoryMB: 32768, NetRxMbps: 1000, NetTxMbps: 1000}},
		{ID: "n2", Power: "on", Capacity: Resources{CPU: 8, MemoryMB: 32768, NetRxMbps: 1000, NetTxMbps: 1000}},
	}
	// Each VM reserves more than half a host, so at reservation pricing the
	// pair cannot share; their measured demand is tiny.
	vms := []VM{
		{ID: "a", State: "running", Node: "n1", Requested: Resources{CPU: 5, MemoryMB: 1024}},
		{ID: "b", State: "running", Node: "n2", Requested: Resources{CPU: 5, MemoryMB: 1024}},
	}
	demand := func(vm VM) types.ResourceVector {
		return types.ResourceVector{CPU: 1, Memory: 512}
	}
	plan, err := PlanConsolidation(vms, nodes, ConsolidationRequest{Algorithm: AlgorithmFFD}, demand)
	if err != nil || plan.HostsAfter != 2 {
		t.Fatalf("requested pricing should keep 2 hosts: %+v %v", plan, err)
	}
	plan, err = PlanConsolidation(vms, nodes, ConsolidationRequest{Algorithm: AlgorithmFFD, Demand: DemandP95}, demand)
	if err != nil || plan.HostsAfter != 1 {
		t.Fatalf("p95 pricing should pack onto 1 host: %+v %v", plan, err)
	}
	if _, err := PlanConsolidation(vms, nodes, ConsolidationRequest{Demand: "peak"}, demand); !errors.Is(err, ErrInvalid) {
		t.Fatalf("unknown demand mode: %v", err)
	}
	if _, err := PlanConsolidation(vms, nodes, ConsolidationRequest{Demand: DemandP95}, nil); !errors.Is(err, ErrUnsupported) {
		t.Fatalf("p95 without a pricing source: %v", err)
	}
}

func TestRunExperimentErrors(t *testing.T) {
	if _, err := RunExperiment(context.Background(), "nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunExperiment(ctx, "e1"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: %v", err)
	}
}

func TestQueryHubSeries(t *testing.T) {
	h := telemetry.NewHub(telemetry.Options{})
	for i := 0; i < 60; i++ {
		h.Record("node/n1", "util", time.Duration(i)*time.Second, float64(i%10)/10)
	}

	// Raw window with pagination.
	data, err := QueryHubSeries(h, SeriesQuery{Entity: "node/n1", Metric: "util", Limit: 25})
	if err != nil || data.Total != 60 || len(data.Points) != 25 || data.NextOffset != 25 {
		t.Fatalf("paged raw query: %+v %v", data, err)
	}
	next, err := QueryHubSeries(h, SeriesQuery{Entity: "node/n1", Metric: "util", Limit: 25, Offset: data.NextOffset})
	if err != nil || next.Points[0].AtNs != int64(25*time.Second) {
		t.Fatalf("second page: %+v %v", next, err)
	}

	// Windowed + downsampled.
	ds, err := QueryHubSeries(h, SeriesQuery{
		Entity: "node/n1", Metric: "util",
		FromNs: int64(10 * time.Second), ToNs: int64(49 * time.Second),
		Agg: "max", StepNs: int64(10 * time.Second),
	})
	if err != nil || ds.Total != 4 {
		t.Fatalf("downsampled: %+v %v", ds, err)
	}
	for _, p := range ds.Points {
		if p.Value != 0.9 {
			t.Fatalf("each 10s bucket contains a 0.9 peak: %+v", ds.Points)
		}
	}

	// Validation.
	for _, bad := range []SeriesQuery{
		{Metric: "util"},
		{Entity: "node/n1"},
		{Entity: "node/n1", Metric: "util", Agg: "median"},
		{Entity: "node/n1", Metric: "util", StepNs: 5},
		{Entity: "node/n1", Metric: "util", FromNs: -1},
		{Entity: "node/n1", Metric: "util", FromNs: 10, ToNs: 5},
	} {
		if _, err := QueryHubSeries(h, bad); !errors.Is(err, ErrInvalid) {
			t.Fatalf("query %+v: %v", bad, err)
		}
	}
}

func TestListHubSeriesAndWatchHub(t *testing.T) {
	h := telemetry.NewHub(telemetry.Options{})
	h.Record("node/n1", "util", 0, 1)
	h.Record("gm/g1", "vms", 0, 2)
	keys := ListHubSeries(h)
	if len(keys) != 2 || keys[0] != (SeriesKey{Entity: "gm/g1", Metric: "vms"}) {
		t.Fatalf("keys: %+v", keys)
	}

	h.Emit("vm.state", "vm/a", time.Second, telemetry.A("state", "placed"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := WatchHub(ctx, h, 0)
	select {
	case ev := <-stream.Events():
		if ev.Seq != 1 || ev.Type != "vm.state" || ev.AtNs != int64(time.Second) {
			t.Fatalf("replayed event: %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no replay")
	}
	live := h.Emit("node.overload", "node/n1", 2*time.Second, telemetry.Attrs{})
	select {
	case ev := <-stream.Events():
		if ev.Seq != live.Seq {
			t.Fatalf("live event: %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no live delivery")
	}
	stream.Close()
	select {
	case _, ok := <-stream.Events():
		if ok {
			t.Fatal("stream still delivering after Close")
		}
	case <-time.After(time.Second):
		t.Fatal("channel not closed after Close")
	}
	if stream.Err() != nil {
		t.Fatalf("clean close reports error: %v", stream.Err())
	}
}
