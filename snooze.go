// Package snooze is a Go reproduction of Snooze, the scalable, autonomic and
// energy-aware virtual machine management framework of Feller & Morin
// (IPDPS 2012 PhD Forum), together with the paper's Ant Colony Optimization
// VM consolidation algorithm.
//
// The package is a facade over the implementation packages:
//
//   - a self-organizing GL / GM / LC hierarchy with leader election,
//     multicast heartbeats and self-healing (internal/hierarchy,
//     internal/election, internal/coord)
//   - two-level VM scheduling: GL dispatching + GM placement, overload /
//     underload relocation and periodic reconfiguration
//     (internal/scheduling)
//   - consolidation algorithms: ACO, First-Fit-Decreasing baselines and an
//     exact branch-and-bound solver (internal/consolidation)
//   - energy management: idle-server suspend, wake-on-demand and energy
//     accounting (internal/energy semantics live in the GM + internal/power)
//   - a deterministic discrete-event simulation of the physical substrate
//     (internal/simkernel, internal/hypervisor, internal/workload) and a
//     REST transport for real deployments (internal/rest)
//   - a versioned, typed control-plane API (api/v1): JSON DTOs, a Backend
//     interface, /v1 HTTP resource routes (api/v1/server) and a typed Go
//     client (api/v1/client). The same routes are served by the simulated
//     cluster (api/v1/simbackend) and by a live snoozed control process
//     (api/v1/livebackend), so operator tooling such as cmd/snoozectl works
//     identically against both.
//
// Quick start (simulated cluster):
//
//	top := snooze.Grid5000Topology(16, 2)
//	c := snooze.NewCluster(snooze.DefaultClusterConfig(top, 42))
//	c.Settle(30 * time.Second)
//	resp, err := c.SubmitAndWait(snooze.NewGenerator(1, nil).Batch(10), time.Minute)
//
// Serving the control-plane API over HTTP (any Backend works):
//
//	backend := snooze.NewSimBackend(c, 0)
//	http.ListenAndServe(":7001", snooze.NewAPIHandler(backend))
//
// Consolidation only:
//
//	inst := snooze.NewInstance(snooze.InstanceConfig{Seed: 1, VMs: 100})
//	res, err := snooze.SolveACO(snooze.Problem{VMs: inst.VMs, Nodes: inst.Nodes}, snooze.DefaultACOConfig())
package snooze

import (
	"net/http"
	"time"

	apiv1 "snooze/api/v1"
	apiclient "snooze/api/v1/client"
	apiserver "snooze/api/v1/server"
	"snooze/api/v1/simbackend"
	"snooze/internal/cluster"
	"snooze/internal/consolidation"
	"snooze/internal/experiments"
	"snooze/internal/telemetry"
	"snooze/internal/types"
	"snooze/internal/workload"
)

// Core domain types.
type (
	// ResourceVector is a 4-dimensional demand/capacity vector (CPU,
	// memory, network rx/tx).
	ResourceVector = types.ResourceVector
	// VMSpec describes a VM submission request.
	VMSpec = types.VMSpec
	// VMID identifies a VM.
	VMID = types.VMID
	// NodeID identifies a physical node.
	NodeID = types.NodeID
	// NodeSpec describes a physical node.
	NodeSpec = types.NodeSpec
	// Placement maps VMs to nodes.
	Placement = types.Placement
	// PowerState is a node power state.
	PowerState = types.PowerState
)

// Node power states (see types.PowerState for the full set).
const (
	PowerOnState        = types.PowerOn
	PowerSuspendedState = types.PowerSuspended
	PowerFailedState    = types.PowerFailed
)

// RV constructs a ResourceVector.
func RV(cpu, mem, rx, tx float64) ResourceVector { return types.RV(cpu, mem, rx, tx) }

// Simulated clusters.
type (
	// Cluster is a fully wired simulated Snooze deployment.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes NewCluster.
	ClusterConfig = cluster.Config
	// Topology describes nodes and hierarchy shape.
	Topology = workload.Topology
)

// NewCluster builds and starts a simulated cluster.
func NewCluster(cfg ClusterConfig) *Cluster { return cluster.New(cfg) }

// DefaultClusterConfig returns a ready-to-run configuration.
func DefaultClusterConfig(top Topology, seed int64) ClusterConfig {
	return cluster.DefaultConfig(top, seed)
}

// Grid5000Topology reproduces the paper's testbed shape: n homogeneous
// nodes managed by gms group managers.
func Grid5000Topology(n, gms int) Topology { return workload.Grid5000Topology(n, gms) }

// Workload generation.
type (
	// Generator produces deterministic VM submission streams.
	Generator = workload.Generator
	// Instance is a consolidation problem instance.
	Instance = workload.Instance
	// InstanceConfig parameterizes NewInstance.
	InstanceConfig = workload.InstanceConfig
)

// NewGenerator creates a VM stream generator (nil classes = default mix).
func NewGenerator(seed int64, classes []workload.VMClass) *Generator {
	return workload.NewGenerator(seed, classes)
}

// NewInstance generates a consolidation instance.
func NewInstance(cfg InstanceConfig) Instance { return workload.NewInstance(cfg) }

// Consolidation.
type (
	// Problem is a consolidation input.
	Problem = consolidation.Problem
	// ConsolidationResult is a solver outcome.
	ConsolidationResult = consolidation.Result
	// ACOConfig holds the ant colony parameters.
	ACOConfig = consolidation.ACOConfig
	// Algorithm is a consolidation solver, usable as the periodic
	// reconfiguration policy in ClusterConfig.Manager.Reconfig.
	Algorithm = consolidation.Algorithm
)

// NewACOAlgorithm returns the ACO solver as a reusable Algorithm value.
func NewACOAlgorithm(cfg ACOConfig) Algorithm { return consolidation.ACO{Config: cfg} }

// DefaultACOConfig returns the calibrated ACO parameters.
func DefaultACOConfig() ACOConfig { return consolidation.DefaultACOConfig() }

// SolveACO runs the paper's ACO consolidation algorithm.
func SolveACO(p Problem, cfg ACOConfig) (ConsolidationResult, error) {
	return consolidation.ACO{Config: cfg}.Solve(p)
}

// SolveFFD runs the First-Fit Decreasing baseline (CPU presort, as in the
// paper's comparison).
func SolveFFD(p Problem) (ConsolidationResult, error) {
	return consolidation.FFD{Key: consolidation.SortCPU}.Solve(p)
}

// SolveOptimal runs the exact branch-and-bound solver (the CPLEX stand-in).
func SolveOptimal(p Problem) (ConsolidationResult, error) {
	return consolidation.Exact{}.Solve(p)
}

// Versioned control-plane API (api/v1).
type (
	// APIBackend is the control-plane surface every deployment flavour
	// implements (api/v1.Backend): the simulated cluster, a live snoozed
	// hierarchy and the typed HTTP client.
	APIBackend = apiv1.Backend
	// APIClient is the typed /v1 HTTP client (api/v1/client.Client).
	APIClient = apiclient.Client
	// SimBackend adapts a simulated Cluster to the APIBackend interface.
	SimBackend = simbackend.Backend
	// APIServer is the configurable /v1 HTTP server (api/v1/server.Server);
	// set StreamContext to bound /v1/watch streams for graceful shutdown.
	APIServer = apiserver.Server
)

// NewSimBackend wraps a simulated cluster as an api/v1 Backend; maxSim
// bounds the virtual time one control-plane call may consume (0 = one
// virtual hour).
func NewSimBackend(c *Cluster, maxSim time.Duration) *SimBackend {
	return simbackend.New(c, maxSim)
}

// NewAPIHandler mounts the /v1 control-plane routes for any backend.
func NewAPIHandler(b APIBackend) http.Handler {
	return apiserver.New(b).Handler()
}

// NewAPIServer returns the configurable /v1 server for any backend (use
// NewAPIHandler when the defaults suffice).
func NewAPIServer(b APIBackend) *APIServer {
	return apiserver.New(b)
}

// NewAPIClient creates a typed client for a /v1 server (e.g. a snoozed
// control process at "http://host:7001").
func NewAPIClient(baseURL string) *APIClient {
	return apiclient.New(baseURL)
}

// Telemetry (internal/telemetry): the time-series store + event journal
// behind GET /v1/series and GET /v1/watch. Every Cluster carries a hub
// (Cluster.Telemetry); live deployments share one across their managers.
type (
	// TelemetryHub bundles the sharded time-series store, the event journal
	// and the node anomaly detector of one deployment.
	TelemetryHub = telemetry.Hub
	// TelemetryOptions parameterizes NewTelemetryHub.
	TelemetryOptions = telemetry.Options
	// TelemetryEvent is one journal entry (node.overload, vm.state, ...).
	TelemetryEvent = telemetry.Event
	// TelemetrySample is one time-series measurement.
	TelemetrySample = telemetry.Sample
)

// NewTelemetryHub creates a telemetry hub (for wiring live deployments; a
// simulated Cluster creates its own).
func NewTelemetryHub(opts TelemetryOptions) *TelemetryHub {
	return telemetry.NewHub(opts)
}

// Experiments.
type (
	// ExperimentResult is one reproduced table/figure.
	ExperimentResult = experiments.Result
	// ExperimentScale selects quick or paper-scale dimensions.
	ExperimentScale = experiments.Scale
)

// Experiment scales.
const (
	ScaleQuick = experiments.ScaleQuick
	ScaleFull  = experiments.ScaleFull
)

// RunAllExperiments reproduces every table/figure of the paper's evaluation.
func RunAllExperiments(scale ExperimentScale) []ExperimentResult {
	return experiments.All(scale)
}

// RunExperiment reproduces one experiment by ID ("e1".."e7" or its name).
func RunExperiment(id string, scale ExperimentScale) (ExperimentResult, error) {
	return experiments.ByID(id, scale)
}
