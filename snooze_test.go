package snooze_test

import (
	"testing"
	"time"

	"snooze"
)

// The facade test doubles as the documented quick-start: everything an
// external adopter touches must work through the package's exported surface.

func TestFacadeQuickstart(t *testing.T) {
	top := snooze.Grid5000Topology(8, 2)
	c := snooze.NewCluster(snooze.DefaultClusterConfig(top, 42))
	c.Settle(30 * time.Second)
	if c.Leader() == nil {
		t.Fatal("no leader")
	}
	resp, err := c.SubmitAndWait(snooze.NewGenerator(1, nil).Batch(5), 2*time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Placed) != 5 {
		t.Fatalf("placed: %d", len(resp.Placed))
	}
}

func TestFacadeConsolidation(t *testing.T) {
	inst := snooze.NewInstance(snooze.InstanceConfig{Seed: 1, VMs: 16})
	p := snooze.Problem{VMs: inst.VMs, Nodes: inst.Nodes}
	aco, err := snooze.SolveACO(p, snooze.DefaultACOConfig())
	if err != nil {
		t.Fatal(err)
	}
	ffd, err := snooze.SolveFFD(p)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := snooze.SolveOptimal(p)
	if err != nil {
		t.Fatal(err)
	}
	if aco.HostsUsed > ffd.HostsUsed {
		t.Fatalf("ACO (%d) worse than FFD (%d)", aco.HostsUsed, ffd.HostsUsed)
	}
	if opt.HostsUsed > aco.HostsUsed {
		t.Fatalf("optimal (%d) worse than ACO (%d)", opt.HostsUsed, aco.HostsUsed)
	}
	if !opt.Optimal {
		t.Fatal("exact solver did not prove optimality on a 16-VM instance")
	}
}

func TestFacadeEnergyManagement(t *testing.T) {
	cfg := snooze.DefaultClusterConfig(snooze.Grid5000Topology(4, 1), 7)
	cfg.Manager.EnergyEnabled = true
	cfg.Manager.IdleThreshold = 20 * time.Second
	cfg.Manager.Reconfig = snooze.NewACOAlgorithm(snooze.DefaultACOConfig())
	cfg.Manager.ReconfigPeriod = time.Minute
	c := snooze.NewCluster(cfg)
	c.Settle(2 * time.Minute)
	if got := c.PowerStates()[snooze.PowerSuspendedState]; got == 0 {
		t.Fatalf("no idle nodes suspended: %v", c.PowerStates())
	}
}

func TestFacadeExperiments(t *testing.T) {
	r, err := snooze.RunExperiment("e7", snooze.ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "E7" || r.Table == nil {
		t.Fatalf("result: %+v", r)
	}
}

func TestFacadeRV(t *testing.T) {
	v := snooze.RV(1, 2, 3, 4)
	if v.CPU != 1 || v.Memory != 2 || v.NetRx != 3 || v.NetTx != 4 {
		t.Fatalf("RV: %+v", v)
	}
}
